#include "kernels/bfs_gmt.hpp"

#include <cstring>

#include "common/time.hpp"

namespace gmt::kernels {

namespace {

constexpr std::uint64_t kNoParent = ~0ULL;
// Neighbour ids fetched per gmt_get while expanding a vertex.
constexpr std::uint64_t kNeighborChunk = 512;

struct BfsArgs {
  graph::DistGraph graph;
  gmt_handle parents;
  gmt_handle frontier;       // current frontier (vertex ids)
  gmt_handle next_frontier;  // next frontier (vertex ids)
  gmt_handle counters;       // [0] next frontier size, [1] edges examined
};

void init_parents_body(std::uint64_t v, const void* raw) {
  BfsArgs args;
  std::memcpy(&args, raw, sizeof(args));
  gmt_put_value_nb(args.parents, v * 8, kNoParent, 8);
}

void expand_body(std::uint64_t i, const void* raw) {
  BfsArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t v = 0;
  gmt_get(args.frontier, i * 8, &v, 8);
  // Degraded-mode guard: a get that lost its partition latches
  // GMT_ERR_NODE_LOST and transfers nothing, so the output buffer is not
  // data — stop expanding before garbage indexes walk out of bounds. The
  // sticky error rides the spawn-done back to the caller, who retries
  // against the surviving membership.
  if (gmt_last_error() != GMT_ERR_OK) return;

  std::uint64_t begin = 0, end = 0;
  args.graph.edge_range(v, &begin, &end);
  if (gmt_last_error() != GMT_ERR_OK) return;
  if (end > begin)
    gmt_atomic_add(args.counters, 8, end - begin, 8);

  std::uint64_t buffer[kNeighborChunk];
  for (std::uint64_t e = begin; e < end; e += kNeighborChunk) {
    const std::uint64_t n =
        end - e < kNeighborChunk ? end - e : kNeighborChunk;
    args.graph.neighbors(e, n, buffer);
    if (gmt_last_error() != GMT_ERR_OK) return;
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t u = buffer[k];
      const std::uint64_t old =
          gmt_atomic_cas(args.parents, u * 8, kNoParent, v, 8);
      if (old == kNoParent) {
        const std::uint64_t slot = gmt_atomic_add(args.counters, 0, 1, 8);
        gmt_put_value_nb(args.next_frontier, slot * 8, u, 8);
      }
    }
  }
  gmt_wait_commands();
}

}  // namespace

BfsResult bfs_gmt(const graph::DistGraph& graph, std::uint64_t root,
                  std::uint64_t chunk) {
  BfsArgs args;
  args.graph = graph;
  args.parents = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.frontier = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.next_frontier = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.counters = gmt_new(2 * 8, Alloc::kLocal);

  gmt_parfor(graph.vertices, 0, &init_parents_body, &args, sizeof(args),
             Spawn::kPartition);

  StopWatch watch;
  gmt_put_value(args.parents, root * 8, root, 8);
  gmt_put_value(args.frontier, 0, root, 8);
  std::uint64_t frontier_size = 1;

  BfsResult result;
  result.visited = 1;
  while (frontier_size > 0 && gmt_last_error() == GMT_ERR_OK) {
    ++result.levels;
    gmt_put_value(args.counters, 0, 0, 8);
    gmt_parfor(frontier_size, chunk, &expand_body, &args, sizeof(args),
               Spawn::kPartition);
    gmt_get(args.counters, 0, &frontier_size, 8);
    // A node loss mid-level can leave a nonsense count behind; never trust
    // it past the structural bound.
    if (frontier_size > graph.vertices) break;
    result.visited += frontier_size;
    std::swap(args.frontier, args.next_frontier);
  }
  gmt_get(args.counters, 8, &result.edges_traversed, 8);
  result.seconds = watch.elapsed_s();

  gmt_free(args.parents);
  gmt_free(args.frontier);
  gmt_free(args.next_frontier);
  gmt_free(args.counters);
  return result;
}

}  // namespace gmt::kernels
