// Distributed histogram / group-by count, GMT programming model.
//
// The combining-layer proof kernel: N keys scattered across the cluster
// are counted into a `buckets`-cell global array. Two strategies, after
// the independent local-aggregate-then-merge designs of Cieslewicz & Ross
// (VLDB 2007, see PAPERS.md):
//
//   kDirect   — one fire-and-forget gmt_atomic_inc per key. Every
//               increment is a remote command; under skewed (Zipf) keys
//               the hot buckets make this the worst case the paper's
//               byte-batching cannot help with — and exactly the traffic
//               the source-side combining table (GMT_COMBINE=1) collapses
//               to one wire command per (task, hot bucket) flush window.
//   kTwoPhase — each task counts its slice into a private local table
//               first, then merges with one gmt_atomic_add_nb per nonzero
//               bucket. The classic software answer to the same problem;
//               its local table is the hand-rolled version of what the
//               runtime's combining table gives kDirect for free.
#pragma once

#include <cstdint>
#include <vector>

#include "gmt/gmt.hpp"

namespace gmt::kernels {

enum class HistogramMode { kDirect, kTwoPhase };

// Keys handled per task across the histogram/sort kernels: big enough that
// a task's hot-bucket increments overlap in the combining table, small
// enough to spread across workers.
inline constexpr std::uint64_t kKeysPerTask = 8192;

struct HistogramResult {
  double seconds = 0;
  std::uint64_t keys = 0;
  std::uint64_t buckets = 0;
  // Final counts (buckets x u64 gmt array; caller frees).
  gmt_handle counts = kNullHandle;
};

// Deterministic Zipf-distributed keys in [0, buckets): rank r is drawn
// with weight 1/(r+1)^s, so s = 0 is uniform and s = 1.5 concentrates
// most of the mass on a handful of hot buckets.
std::vector<std::uint64_t> make_zipf_keys(std::uint64_t n,
                                          std::uint64_t buckets, double s,
                                          std::uint64_t seed);

// Uploads host keys into a fresh kPartition u64 array (must be called
// from inside a GMT task; caller frees). Empty input has no backing array:
// returns kNullHandle, which histogram_gmt/sort_gmt accept with n = 0.
gmt_handle upload_keys(const std::vector<std::uint64_t>& keys);

// Fetches `count` u64 keys starting at element `begin` with chunked
// blocking gets (shared by the histogram and sort slice bodies).
std::vector<std::uint64_t> fetch_keys(gmt_handle keys, std::uint64_t begin,
                                      std::uint64_t count);

// Counts key occurrences into a fresh global array. Must be called from
// inside a GMT task. Requires buckets > 0; n = 0 yields all-zero counts.
// A key >= buckets is a checked error (GMT_CHECK aborts loudly) — before
// this check the direct strategy emitted a remote atomic past the counts
// array and the two-phase strategy wrote its task-local table out of
// bounds (heap OOB).
HistogramResult histogram_gmt(gmt_handle keys, std::uint64_t n,
                              std::uint64_t buckets, HistogramMode mode);

}  // namespace gmt::kernels
