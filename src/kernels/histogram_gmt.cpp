#include "kernels/histogram_gmt.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "runtime/collectives.hpp"

namespace gmt::kernels {

namespace {

constexpr std::uint64_t kGetBatch = 1024;

struct HistArgs {
  gmt_handle keys;
  gmt_handle counts;
  std::uint64_t n;
  std::uint64_t buckets;
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::vector<std::uint64_t> fetch_slice(const HistArgs& args,
                                       std::uint64_t slice) {
  const std::uint64_t begin = slice * kKeysPerTask;
  const std::uint64_t end =
      begin + kKeysPerTask < args.n ? begin + kKeysPerTask : args.n;
  return fetch_keys(args.keys, begin, end - begin);
}

void direct_body(std::uint64_t slice, const void* raw) {
  HistArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::vector<std::uint64_t> keys = fetch_slice(args, slice);
  for (const std::uint64_t key : keys) {
    GMT_CHECK_MSG(key < args.buckets,
                  "histogram_gmt: key >= buckets (remote atomic past the "
                  "counts array)");
    gmt_atomic_inc(args.counts, key * 8, 8);
  }
  gmt_wait_commands();
}

void two_phase_body(std::uint64_t slice, const void* raw) {
  HistArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::vector<std::uint64_t> keys = fetch_slice(args, slice);
  std::vector<std::uint32_t> local(args.buckets, 0);
  for (const std::uint64_t key : keys) {
    GMT_CHECK_MSG(key < args.buckets,
                  "histogram_gmt: key >= buckets (local table overrun)");
    ++local[key];
  }
  for (std::uint64_t b = 0; b < args.buckets; ++b)
    if (local[b] != 0) gmt_atomic_add_nb(args.counts, b * 8, local[b], 8);
  gmt_wait_commands();
}

}  // namespace

std::vector<std::uint64_t> make_zipf_keys(std::uint64_t n,
                                          std::uint64_t buckets, double s,
                                          std::uint64_t seed) {
  // Inverse-CDF sampling over the finite Zipf(s) distribution.
  std::vector<double> cdf(buckets);
  double total = 0;
  for (std::uint64_t r = 0; r < buckets; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(splitmix64(seed ^ i) >> 11) *
                     (1.0 / 9007199254740992.0) * total;  // [0, total)
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    std::uint64_t r = static_cast<std::uint64_t>(it - cdf.begin());
    if (r >= buckets) r = buckets - 1;
    keys[i] = r;
  }
  return keys;
}

std::vector<std::uint64_t> fetch_keys(gmt_handle keys, std::uint64_t begin,
                                      std::uint64_t count) {
  // Chunked blocking gets — each get suspends the fiber, so doing them all
  // up front keeps the caller's increment/scatter loop suspension-free and
  // the combining window as wide as the slice.
  std::vector<std::uint64_t> out(count);
  for (std::uint64_t k = 0; k < count; k += kGetBatch) {
    const std::uint64_t batch = count - k < kGetBatch ? count - k : kGetBatch;
    gmt_get(keys, (begin + k) * 8, out.data() + k, batch * 8);
  }
  return out;
}

gmt_handle upload_keys(const std::vector<std::uint64_t>& keys) {
  // gmt_new rejects zero-byte allocations; an empty key set has no backing
  // array and is spelled kNullHandle (histogram_gmt/sort_gmt accept it
  // together with n = 0).
  if (keys.empty()) return kNullHandle;
  const gmt_handle h = gmt_new(keys.size() * 8, Alloc::kPartition);
  constexpr std::uint64_t kPutChunk = 4096;
  for (std::uint64_t i = 0; i < keys.size(); i += kPutChunk) {
    const std::uint64_t count =
        keys.size() - i < kPutChunk ? keys.size() - i : kPutChunk;
    gmt_put(h, i * 8, keys.data() + i, count * 8);
  }
  return h;
}

HistogramResult histogram_gmt(gmt_handle keys, std::uint64_t n,
                              std::uint64_t buckets, HistogramMode mode) {
  GMT_CHECK_MSG(buckets > 0, "histogram_gmt: zero buckets");
  GMT_CHECK_MSG(n == 0 || keys != kNullHandle,
                "histogram_gmt: null key handle with n > 0");
  HistArgs args;
  args.keys = keys;
  args.counts = gmt_new(buckets * 8, Alloc::kPartition);
  args.n = n;
  args.buckets = buckets;

  HistogramResult result;
  result.keys = n;
  result.buckets = buckets;
  result.counts = args.counts;

  // Blocking stripe fill. The old per-bucket zero parfor issued one
  // fire-and-forget gmt_put_value_nb per cell and leaned on the task-exit
  // drain for ordering against the counting parfor (pinned by the
  // TaskExitDrainsNonBlockingPuts regression test); the stripe fill makes
  // the zeroing explicitly ordered AND ~512x fewer commands. It also keeps
  // the kernel correct if counts ever comes from a recycled (non-fresh)
  // allocation.
  coll::fill_u64(args.counts, 0, buckets, 0);

  if (n == 0) return result;  // zero slices: nothing to count

  const std::uint64_t slices = (n + kKeysPerTask - 1) / kKeysPerTask;
  StopWatch watch;
  gmt_parfor(slices, 1, mode == HistogramMode::kDirect ? &direct_body
                                                       : &two_phase_body,
             &args, sizeof(args), Spawn::kPartition);
  result.seconds = watch.elapsed_s();
  return result;
}

}  // namespace gmt::kernels
