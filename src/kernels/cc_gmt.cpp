#include "kernels/cc_gmt.hpp"

#include <cstring>

#include "common/time.hpp"
#include "runtime/collectives.hpp"

namespace gmt::kernels {

namespace {

struct CcArgs {
  graph::DistGraph graph;
  gmt_handle labels;
  gmt_handle changed;  // [0]: updates performed this round
};

void init_labels_body(std::uint64_t v, const void* raw) {
  CcArgs args;
  std::memcpy(&args, raw, sizeof(args));
  gmt_put_value_nb(args.labels, v * 8, v, 8);
}

// Lowers labels[index] to at most `bound`; returns true on change.
bool cas_min(gmt_handle labels, std::uint64_t index, std::uint64_t bound) {
  std::uint64_t seen;
  gmt_get(labels, index * 8, &seen, 8);
  bool changed = false;
  while (bound < seen) {
    const std::uint64_t old =
        gmt_atomic_cas(labels, index * 8, seen, bound, 8);
    if (old == seen) {
      changed = true;
      break;
    }
    seen = old;
  }
  return changed;
}

void propagate_body(std::uint64_t v, const void* raw) {
  CcArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin = 0, end = 0;
  args.graph.edge_range(v, &begin, &end);
  if (begin == end) return;

  std::uint64_t label_v;
  gmt_get(args.labels, v * 8, &label_v, 8);

  std::uint64_t updates = 0;
  std::uint64_t buffer[256];
  for (std::uint64_t e = begin; e < end; e += 256) {
    const std::uint64_t n = end - e < 256 ? end - e : 256;
    args.graph.neighbors(e, n, buffer);
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t u = buffer[k];
      std::uint64_t label_u;
      gmt_get(args.labels, u * 8, &label_u, 8);
      // Propagate the smaller label across the edge, both directions.
      if (label_v < label_u) {
        if (cas_min(args.labels, u, label_v)) ++updates;
      } else if (label_u < label_v) {
        if (cas_min(args.labels, v, label_u)) ++updates;
        label_v = label_u;  // keep pushing the improved label
      }
    }
  }
  if (updates) gmt_atomic_add(args.changed, 0, updates, 8);
}

}  // namespace

CcResult cc_gmt(const graph::DistGraph& graph) {
  CcArgs args;
  args.graph = graph;
  args.labels = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.changed = gmt_new(8, Alloc::kPartition);

  CcResult result;
  StopWatch watch;
  gmt_parfor(graph.vertices, 0, &init_labels_body, &args, sizeof(args),
             Spawn::kPartition);

  for (;;) {
    ++result.iterations;
    gmt_put_value(args.changed, 0, 0, 8);
    gmt_parfor(graph.vertices, 0, &propagate_body, &args, sizeof(args),
               Spawn::kPartition);
    std::uint64_t changed = 0;
    gmt_get(args.changed, 0, &changed, 8);
    if (changed == 0) break;
  }

  // A vertex whose label equals its own id roots a component.
  std::uint64_t roots = 0;
  for (std::uint64_t v = 0; v < graph.vertices; ++v) {
    std::uint64_t label;
    gmt_get(args.labels, v * 8, &label, 8);
    if (label == v) ++roots;
  }
  result.components = roots;
  result.seconds = watch.elapsed_s();
  result.labels = args.labels;
  gmt_free(args.changed);
  return result;
}

}  // namespace gmt::kernels
