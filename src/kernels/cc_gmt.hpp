// Connected components by label propagation, GMT programming model.
//
// An extension kernel beyond the paper's three: the same fine-grained
// irregular pattern (per-edge CAS-min label updates) used by community
// detection and graph clustering — application areas the paper's
// introduction motivates. Edges are treated as undirected (labels
// propagate both ways), so the result is weakly connected components.
#pragma once

#include <cstdint>

#include "graph/dist_graph.hpp"

namespace gmt::kernels {

struct CcResult {
  std::uint64_t components = 0;
  std::uint64_t iterations = 0;
  double seconds = 0;
  // Component label per vertex (a gmt array of V u64; caller frees).
  gmt_handle labels = kNullHandle;
};

// Must be called from inside a GMT task.
CcResult cc_gmt(const graph::DistGraph& graph);

}  // namespace gmt::kernels
