#include "kernels/sort_gmt.hpp"

#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "gmt/error.hpp"
#include "runtime/collectives.hpp"

namespace gmt::kernels {

namespace {

// Keys per wire put in the shuffle: one hot bucket's run can span a whole
// slice (kKeysPerTask * 8 = 64 KB), which must not hit the aggregation
// path as a single command.
constexpr std::uint64_t kPutChunk = 4096;

// Cursor reservations in flight per task before the first await.
constexpr std::size_t kReserveBatch = 32;

struct ShuffleArgs {
  gmt_handle keys;
  gmt_handle cursors;  // per-bucket next-write index, advanced atomically
  gmt_handle sorted;
  std::uint64_t n;
  std::uint64_t buckets;
};

void shuffle_body(std::uint64_t slice, const void* raw) {
  ShuffleArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::uint64_t begin = slice * kKeysPerTask;
  const std::uint64_t end =
      begin + kKeysPerTask < args.n ? begin + kKeysPerTask : args.n;
  const std::vector<std::uint64_t> keys =
      fetch_keys(args.keys, begin, end - begin);

  // Morsel-local aggregate: count the slice into a private table, so the
  // cursor array sees one reservation per (task, nonzero bucket) instead
  // of one atomic per key.
  std::vector<std::uint32_t> local(args.buckets, 0);
  for (const std::uint64_t key : keys) {
    GMT_CHECK_MSG(key < args.buckets, "sort_gmt: key >= buckets");
    ++local[key];
  }
  std::vector<std::uint64_t> nonzero;
  for (std::uint64_t b = 0; b < args.buckets; ++b)
    if (local[b] != 0) nonzero.push_back(b);

  // Reserve a contiguous window per nonzero bucket: pipelined futures keep
  // kReserveBatch fetch-adds in flight, so a slice touching hundreds of
  // buckets pays a handful of round-trips, not hundreds.
  std::vector<std::uint64_t> base(nonzero.size());
  Future fs[kReserveBatch];
  for (std::size_t at = 0; at < nonzero.size(); at += kReserveBatch) {
    const std::size_t batch = nonzero.size() - at < kReserveBatch
                                  ? nonzero.size() - at
                                  : kReserveBatch;
    for (std::size_t j = 0; j < batch; ++j)
      fs[j] = gmt_atomic_add_f(args.cursors, nonzero[at + j] * 8,
                               local[nonzero[at + j]], &base[at + j], 8);
    wait_all(std::span<const Future>(fs, batch));
  }

  // Group the slice by bucket (one compaction pass), then stream each
  // bucket's run to its reserved window through the aggregation path.
  std::vector<std::uint64_t> grouped(keys.size());
  std::vector<std::uint64_t> at(args.buckets, 0);
  {
    std::uint64_t running = 0;
    for (const std::uint64_t b : nonzero) {
      at[b] = running;
      running += local[b];
    }
  }
  std::vector<std::uint64_t> start(nonzero.size());
  for (std::size_t j = 0; j < nonzero.size(); ++j) start[j] = at[nonzero[j]];
  for (const std::uint64_t key : keys) grouped[at[key]++] = key;

  for (std::size_t j = 0; j < nonzero.size(); ++j) {
    const std::uint64_t run = local[nonzero[j]];
    for (std::uint64_t off = 0; off < run; off += kPutChunk) {
      const std::uint64_t chunk =
          run - off < kPutChunk ? run - off : kPutChunk;
      gmt_put_nb(args.sorted, (base[j] + off) * 8,
                 grouped.data() + start[j] + off, chunk * 8);
    }
  }
  gmt_wait_commands();
}

}  // namespace

SortResult sort_gmt(gmt_handle keys, std::uint64_t n, std::uint64_t buckets,
                    HistogramMode mode) {
  GMT_CHECK_MSG(buckets > 0, "sort_gmt: zero buckets");
  GMT_CHECK_MSG(n == 0 || keys != kNullHandle,
                "sort_gmt: null key handle with n > 0");
  SortResult result;
  result.keys = n;
  result.buckets = buckets;
  result.offsets = gmt_new(buckets * 8, Alloc::kPartition);
  if (n == 0) {
    coll::fill_u64(result.offsets, 0, buckets, 0);
    return result;  // sorted stays kNullHandle; offsets are all zero
  }

  StopWatch total_watch;
  HistogramResult hist = histogram_gmt(keys, n, buckets, mode);
  result.count_seconds = hist.seconds;

  StopWatch scan_watch;
  const std::uint64_t total = gmt_scan(hist.counts, result.offsets, buckets);
  result.scan_seconds = scan_watch.elapsed_s();

  // Node lost during count/scan: the counts are incomplete, so total != n
  // is expected — surface the degraded run to the caller instead of
  // treating it as the bug the GMT_CHECK below guards against.
  if (gmt_last_error() != GMT_ERR_OK) {
    gmt_free(hist.counts);
    result.seconds = total_watch.elapsed_s();
    return result;
  }
  GMT_CHECK_MSG(total == n, "sort_gmt: counting pass lost keys");

  // The counts array retires into the shuffle's cursor array: overwrite it
  // with the exclusive offsets and let tasks fetch-add their windows out
  // of it, keeping `offsets` pristine for the caller.
  coll::copy(hist.counts, 0, result.offsets, 0, buckets * 8);
  result.sorted = gmt_new(n * 8, Alloc::kPartition);

  StopWatch shuffle_watch;
  ShuffleArgs args;
  args.keys = keys;
  args.cursors = hist.counts;
  args.sorted = result.sorted;
  args.n = n;
  args.buckets = buckets;
  gmt_parfor((n + kKeysPerTask - 1) / kKeysPerTask, 1, &shuffle_body, &args,
             sizeof(args), Spawn::kPartition);
  result.shuffle_seconds = shuffle_watch.elapsed_s();

  gmt_free(hist.counts);
  result.seconds = total_watch.elapsed_s();
  return result;
}

void sort_free(SortResult& result) {
  if (result.sorted != kNullHandle) gmt_free(result.sorted);
  if (result.offsets != kNullHandle) gmt_free(result.offsets);
  result.sorted = kNullHandle;
  result.offsets = kNullHandle;
}

}  // namespace gmt::kernels
