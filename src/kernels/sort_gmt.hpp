// Distributed integer histogram-sort, GMT programming model.
//
// Sorts n u64 keys drawn from [0, buckets) — the FG-ABSP-style integer
// sort (see PAPERS.md): the value range IS the bucket space, so a counting
// pass plus a prefix scan fixes every key's destination exactly and the
// "sort" reduces to one all-to-all shuffle. Three phases, each riding a
// different part of the fabric:
//
//   1. Count    — the distributed histogram kernel verbatim
//                 (histogram_gmt): fire-and-forget gmt_atomic_inc through
//                 the source-side combining table (kDirect), or per-task
//                 local tables merged with gmt_atomic_add_nb (kTwoPhase).
//   2. Scan     — gmt_scan turns bucket counts into exclusive start
//                 offsets (the new distributed prefix-scan collective).
//   3. Shuffle  — each task counts its slice locally (the morsel-local
//                 aggregate of Leis et al., SNIPPETS.md), reserves one
//                 contiguous write window per nonzero bucket with
//                 pipelined gmt_atomic_add_f futures against a cursor
//                 array, groups the slice by bucket, and streams each run
//                 to its window with bulk non-blocking puts — exactly the
//                 irregular bulk traffic the aggregation layer batches and
//                 the credit windows throttle.
//
// Ordering: output is ascending by key. Keys within a bucket are identical
// integers, so bucket-internal "stability" is vacuous for this kernel; the
// order in which tasks claim their cursor windows is nondeterministic, and
// a future payload-carrying variant would be stable only within one task's
// slice. The result therefore exact-matches a std::sort oracle bit for bit.
//
// Degraded mode: if a node is lost mid-sort the phases terminate (no hang),
// the sticky task error reads GMT_ERR_NODE_LOST, and the partially written
// result must be discarded — re-run after the membership epoch commits
// (with replication on, the retry sorts exactly; see test_sort.cpp).
#pragma once

#include <cstdint>

#include "gmt/gmt.hpp"
#include "kernels/histogram_gmt.hpp"

namespace gmt::kernels {

struct SortResult {
  // Phase wall times; seconds is the end-to-end figure.
  double seconds = 0;
  double count_seconds = 0;
  double scan_seconds = 0;
  double shuffle_seconds = 0;
  std::uint64_t keys = 0;
  std::uint64_t buckets = 0;
  // Sorted keys (n x u64, ascending; kNullHandle when n == 0). Caller frees.
  gmt_handle sorted = kNullHandle;
  // Exclusive per-bucket start offsets (buckets x u64: offsets[b] is where
  // bucket b begins in `sorted`; all zero when n == 0). Caller frees.
  gmt_handle offsets = kNullHandle;
};

// Sorts the `keys` array (n u64 elements, each < buckets) into a fresh
// global array. Must be called from inside a GMT task. Requires
// buckets > 0; accepts n = 0 (with keys == kNullHandle) and single-bucket
// inputs. `mode` selects the counting strategy (HistogramMode above). On
// node loss the partial result is unusable: check gmt_last_error() before
// trusting `sorted`.
SortResult sort_gmt(gmt_handle keys, std::uint64_t n, std::uint64_t buckets,
                    HistogramMode mode = HistogramMode::kDirect);

// Frees the result's arrays (no-ops on kNullHandle members).
void sort_free(SortResult& result);

}  // namespace gmt::kernels
