#include "kernels/grw_gmt.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace gmt::kernels {

namespace {

struct GrwArgs {
  graph::DistGraph graph;
  gmt_handle counters;  // [0] edges traversed
  std::uint64_t length;
  std::uint64_t seed;
};

void walk_body(std::uint64_t walker, const void* raw) {
  GrwArgs args;
  std::memcpy(&args, raw, sizeof(args));
  Xoshiro256 rng(args.seed ^ (walker * 0x9e3779b97f4a7c15ULL));

  // Sources spread across the vertex range (paper: V/2 distinct sources).
  std::uint64_t v = walker % args.graph.vertices;
  std::uint64_t traversed = 0;
  for (std::uint64_t step = 0; step < args.length; ++step) {
    std::uint64_t begin = 0, end = 0;
    args.graph.edge_range(v, &begin, &end);
    if (end == begin) {
      // Dead end: teleport, not counted as an edge traversal.
      v = rng.below(args.graph.vertices);
      continue;
    }
    std::uint64_t next = 0;
    gmt_get(args.graph.adjacency, (begin + rng.below(end - begin)) * 8,
            &next, 8);
    v = next;
    ++traversed;
  }
  gmt_atomic_add(args.counters, 0, traversed, 8);
}

}  // namespace

GrwResult grw_gmt(const graph::DistGraph& graph, std::uint64_t walkers,
                  std::uint64_t length, std::uint64_t seed) {
  GrwArgs args;
  args.graph = graph;
  args.counters = gmt_new(8, Alloc::kLocal);
  args.length = length;
  args.seed = seed;

  GrwResult result;
  result.walkers = walkers;
  result.steps_per_walker = length;

  StopWatch watch;
  gmt_parfor(walkers, 1, &walk_body, &args, sizeof(args), Spawn::kPartition);
  result.seconds = watch.elapsed_s();
  gmt_get(args.counters, 0, &result.edges_traversed, 8);
  gmt_free(args.counters);
  return result;
}

}  // namespace gmt::kernels
