// Concurrent Hash Map Access, GMT programming model (paper §V-D).
//
// W tasks stream strings against a distributed hash map for L steps each:
// look the string up; if present, reverse it and store the reversed string
// back; otherwise move to the next input string. Each step is a handful of
// fine-grained gets plus a CAS — the access pattern of streaming filters
// and information-retrieval pipelines the paper motivates.
#pragma once

#include <cstdint>

#include "hash/dist_hash_map.hpp"

namespace gmt::kernels {

struct ChmaResult {
  std::uint64_t tasks = 0;             // W
  std::uint64_t steps_per_task = 0;    // L
  std::uint64_t accesses = 0;          // hash-map operations completed
  double seconds = 0;

  double maccesses_per_s() const {
    return seconds > 0 ? static_cast<double>(accesses) / seconds / 1e6 : 0;
  }
};

// Populates `map` with the first `populate` strings of a deterministic
// pool of `pool_size` strings (parallel insert). Must run inside a task.
// The pool is uploaded to a global array so every node draws inputs from
// the same dataset.
struct ChmaWorkload {
  hash::DistHashMap map;
  gmt_handle pool = kNullHandle;  // pool_size x StringKey
  std::uint64_t pool_size = 0;

  static ChmaWorkload setup(std::uint64_t map_capacity,
                            std::uint64_t pool_size, std::uint64_t populate,
                            std::uint64_t seed = 42);
  void destroy();
};

// Runs the W x L access pattern. Must be called from inside a GMT task.
ChmaResult chma_gmt(const ChmaWorkload& workload, std::uint64_t tasks,
                    std::uint64_t steps, std::uint64_t seed = 42);

}  // namespace gmt::kernels
