// PageRank, GMT programming model.
//
// Extension kernel: power iteration with per-edge atomic scatter — ranks
// held in Q32.32 fixed point so contributions accumulate with
// gmt_atomic_add (no remote float atomics needed). Demonstrates the
// runtime on a bandwidth-heavier irregular kernel than BFS.
#pragma once

#include <cstdint>

#include "graph/dist_graph.hpp"

namespace gmt::kernels {

struct PagerankResult {
  std::uint64_t iterations = 0;
  double seconds = 0;
  // Final ranks in Q32.32 fixed point (V x u64 gmt array; caller frees).
  gmt_handle ranks = kNullHandle;

  static double to_double(std::uint64_t fixed) {
    return static_cast<double>(fixed) / 4294967296.0;
  }
};

// Runs `iterations` power-iteration steps with damping factor `damping`.
// Must be called from inside a GMT task. Dangling vertices redistribute
// uniformly.
PagerankResult pagerank_gmt(const graph::DistGraph& graph,
                            std::uint32_t iterations = 10,
                            double damping = 0.85);

}  // namespace gmt::kernels
