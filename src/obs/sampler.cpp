#include "obs/sampler.hpp"

#include <chrono>

#include "common/time.hpp"

namespace gmt::obs {

Sampler::Sampler(std::uint64_t interval_ms,
                 std::function<void(std::uint64_t)> tick)
    : tick_(std::move(tick)),
      thread_([this, interval_ms] { loop(interval_ms); }) {}

Sampler::~Sampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Sampler::loop(std::uint64_t interval_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(interval_ms), [&] { return stop_; });
    lock.unlock();
    tick_(wall_ns());
    if (stopping) return;  // final tick recorded above
    lock.lock();
  }
}

}  // namespace gmt::obs
