// Implementation of the public observability surface (gmt/obs.hpp): thin
// veneers over the registry list and the tracer.
#include "gmt/obs.hpp"

#include <cstdio>

#include "common/time.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gmt {

obs::Snapshot stats_snapshot() { return obs::global_snapshot(); }

std::string stats_report() {
  const auto scopes = obs::scoped_snapshots();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %12s %12s %12s %12s %12s %12s\n",
                "scope", "tasks", "iters", "ctx-switch", "local ops",
                "remote cmds", "cmds exec");
  out += line;
  obs::Snapshot total;
  for (const auto& [scope, snap] : scopes) {
    total.merge(snap);
    std::snprintf(
        line, sizeof(line), "%-8s %12llu %12llu %12llu %12llu %12llu %12llu\n",
        scope.c_str(),
        static_cast<unsigned long long>(
            snap.counter(obs::names::kTasksExecuted)),
        static_cast<unsigned long long>(
            snap.counter(obs::names::kIterationsExecuted)),
        static_cast<unsigned long long>(snap.counter(obs::names::kCtxSwitches)),
        static_cast<unsigned long long>(snap.counter(obs::names::kLocalOps)),
        static_cast<unsigned long long>(snap.counter(obs::names::kRemoteOps)),
        static_cast<unsigned long long>(
            snap.counter(obs::names::kCmdsExecuted)));
    out += line;
  }

  const std::uint64_t messages = total.counter(obs::names::kNetMessages);
  const std::uint64_t bytes = total.counter(obs::names::kNetBytes);
  if (messages == 0) {
    out += "network: 0 messages (no remote traffic)\n";
  } else {
    std::snprintf(
        line, sizeof(line),
        "network: %llu messages, %s, %.1f commands/message, %s/message\n",
        static_cast<unsigned long long>(messages),
        format_bytes(static_cast<double>(bytes)).c_str(),
        static_cast<double>(total.counter(obs::names::kRemoteOps)) /
            static_cast<double>(messages),
        format_bytes(static_cast<double>(bytes) /
                     static_cast<double>(messages))
            .c_str());
    out += line;
  }

  if (const obs::HistogramValue* flush =
          total.histogram(obs::names::kAggFlushBytes);
      flush != nullptr && flush->count > 0) {
    std::snprintf(line, sizeof(line),
                  "aggregation: %llu buffers, %s mean payload\n",
                  static_cast<unsigned long long>(flush->count),
                  format_bytes(flush->mean()).c_str());
    out += line;
  }

  if (total.counter(obs::names::kRelDataFrames) != 0) {
    const obs::HistogramValue* ack =
        total.histogram(obs::names::kRelAckLatencyNs);
    std::snprintf(
        line, sizeof(line),
        "reliability: %llu frames, %llu retransmits, %llu acks, "
        "%.1f us mean ack latency\n",
        static_cast<unsigned long long>(
            total.counter(obs::names::kRelDataFrames)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kRelRetransmits)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kRelAcksSent)),
        ack != nullptr ? ack->mean() / 1000.0 : 0.0);
    out += line;
  }

  const std::uint64_t credits_consumed =
      total.counter(obs::names::kAggCreditsConsumed);
  const std::uint64_t credits_granted =
      total.counter(obs::names::kAggCreditsGranted);
  if (credits_consumed != 0 || credits_granted != 0) {
    const obs::HistogramValue* stall =
        total.histogram(obs::names::kAggCreditStallNs);
    std::snprintf(
        line, sizeof(line),
        "flow control: %llu credits consumed, %llu granted, %llu stalls "
        "(%.1f us mean park), %llu emergency blocks\n",
        static_cast<unsigned long long>(credits_consumed),
        static_cast<unsigned long long>(credits_granted),
        static_cast<unsigned long long>(
            total.counter(obs::names::kAggCreditStalls)),
        stall != nullptr ? stall->mean() / 1000.0 : 0.0,
        static_cast<unsigned long long>(
            total.counter(obs::names::kAggBlocksEmergency)));
    out += line;
  }

  if (const obs::HistogramValue* adaptive =
          total.histogram(obs::names::kAggAdaptiveQueueNs);
      adaptive != nullptr && adaptive->count > 0) {
    std::snprintf(line, sizeof(line),
                  "adaptive flush: %llu timeout flushes, %.1f us mean "
                  "deadline\n",
                  static_cast<unsigned long long>(adaptive->count),
                  adaptive->mean() / 1000.0);
    out += line;
  }

  const std::uint64_t combine_hits =
      total.counter(obs::names::kAggCombineHits);
  const std::uint64_t combine_installs =
      total.counter(obs::names::kAggCombineInstalls);
  if (combine_hits != 0 || combine_installs != 0) {
    std::snprintf(line, sizeof(line),
                  "combining: %llu commands elided (hits), %llu installs, "
                  "%llu evictions, %llu drained\n",
                  static_cast<unsigned long long>(combine_hits),
                  static_cast<unsigned long long>(combine_installs),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kAggCombineEvictions)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kAggCombineDrains)));
    out += line;
  }

  const std::uint64_t cache_hits = total.counter(obs::names::kCacheHits);
  const std::uint64_t cache_misses = total.counter(obs::names::kCacheMisses);
  const std::uint64_t cache_invals = total.counter(obs::names::kCacheInvals);
  if (cache_hits != 0 || cache_misses != 0 || cache_invals != 0) {
    const std::uint64_t probes = cache_hits + cache_misses;
    std::snprintf(
        line, sizeof(line),
        "cache: %llu hits, %llu misses (%.1f%% hit rate), %llu installs, "
        "%llu invalidation rounds (%llu lines dropped)\n",
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        probes ? 100.0 * static_cast<double>(cache_hits) /
                     static_cast<double>(probes)
               : 0.0,
        static_cast<unsigned long long>(
            total.counter(obs::names::kCacheInstalls)),
        static_cast<unsigned long long>(cache_invals),
        static_cast<unsigned long long>(
            total.counter(obs::names::kCacheInvalLines)));
    out += line;
  }

  if (const std::uint64_t issued = total.counter(obs::names::kFuturesIssued);
      issued != 0) {
    std::snprintf(
        line, sizeof(line),
        "futures: %llu issued, %llu waits (%llu parked the task), "
        "%llu abandoned at task end\n",
        static_cast<unsigned long long>(issued),
        static_cast<unsigned long long>(
            total.counter(obs::names::kFuturesWaits)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kFuturesParked)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kFuturesAbandoned)));
    out += line;
  }

  if (const std::uint64_t sent = total.counter(obs::names::kActorSent);
      sent != 0) {
    std::snprintf(
        line, sizeof(line),
        "actors: %llu sent, %llu delivered (%llu replies), %llu sender "
        "parks, %llu drains, %llu no-mailbox rejects\n",
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(
            total.counter(obs::names::kActorDelivered)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kActorReplies)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kActorParks)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kActorDrains)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kActorNoMailbox)));
    out += line;
  }

  if (const std::uint64_t allocs = total.counter(obs::names::kMemAllocs);
      allocs != 0) {
    std::snprintf(
        line, sizeof(line),
        "memory: %lld live entries (%s), %llu allocs, %llu frees, "
        "%llu slots recycled, %llu deferred reclaims, free list %lld\n",
        static_cast<long long>(total.gauge(obs::names::kMemLiveHandles)),
        format_bytes(
            static_cast<double>(total.gauge(obs::names::kMemLiveBytes)))
            .c_str(),
        static_cast<unsigned long long>(allocs),
        static_cast<unsigned long long>(total.counter(obs::names::kMemFrees)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMemSlotsRecycled)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMemDeferredReclaims)),
        static_cast<long long>(total.gauge(obs::names::kMemFreeListDepth)));
    out += line;
  }

  const std::uint64_t faults =
      total.counter(obs::names::kFaultDrops) +
      total.counter(obs::names::kFaultDuplicates) +
      total.counter(obs::names::kFaultCorruptions) +
      total.counter(obs::names::kFaultReorders) +
      total.counter(obs::names::kFaultBackpressures) +
      total.counter(obs::names::kFaultKills);
  if (faults != 0) {
    std::snprintf(line, sizeof(line),
                  "faults injected: %llu drops, %llu dups, %llu corruptions, "
                  "%llu reorders, %llu backpressures, %llu kill-swallowed\n",
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultDrops)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultDuplicates)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultCorruptions)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultReorders)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultBackpressures)),
                  static_cast<unsigned long long>(
                      total.counter(obs::names::kFaultKills)));
    out += line;
  }

  if (total.counter(obs::names::kMembHeartbeats) != 0 ||
      total.counter(obs::names::kMembPeersLost) != 0 ||
      total.counter(obs::names::kMembEpochCommits) != 0) {
    std::snprintf(
        line, sizeof(line),
        "membership: epoch %lld, live nodes %lld, %llu peers lost, "
        "%llu epoch commits, %llu heartbeats, %llu ops failed NODE_LOST\n",
        static_cast<long long>(total.gauge(obs::names::kMembEpoch)),
        static_cast<long long>(total.gauge(obs::names::kMembLiveNodes)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMembPeersLost)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMembEpochCommits)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMembHeartbeats)),
        static_cast<unsigned long long>(
            total.counter(obs::names::kMembOpsFailed)));
    out += line;
    // Per-peer health, per scope (the merged view would sum gauges across
    // nodes, which is meaningless for states).
    for (const auto& [scope, snap] : scopes) {
      std::string row = "health " + scope + ":";
      bool any = false;
      for (const auto& gauge : snap.gauges) {
        if (gauge.name.rfind("health.peer", 0) != 0) continue;
        const auto dot = gauge.name.find('.', 11);
        if (dot == std::string::npos ||
            gauge.name.compare(dot, std::string::npos, ".state") != 0)
          continue;
        const std::string peer = gauge.name.substr(11, dot - 11);
        const std::int64_t age =
            snap.gauge("health.peer" + peer + ".last_ack_age_us");
        const std::int64_t timeouts =
            snap.gauge("health.peer" + peer + ".timeouts");
        const char* tag = gauge.value == 0
                              ? "live"
                              : (gauge.value == 1 ? "suspect" : "dead");
        std::snprintf(line, sizeof(line), " %s=%s(age=%lldus,to=%lld)",
                      peer.c_str(), tag, static_cast<long long>(age),
                      static_cast<long long>(timeouts));
        row += line;
        any = true;
      }
      if (any) out += row + "\n";
    }
  }
  return out;
}

void trace_enable(bool on) { obs::Tracer::global().set_enabled(on); }

bool trace_enabled() { return obs::trace_on(); }

void trace_begin(const char* name) {
  if (!obs::trace_on()) return;
  obs::Tracer::global().thread_track()->begin(name, wall_ns());
}

void trace_end() {
  if (!obs::trace_on()) return;
  obs::Tracer::global().thread_track()->end(wall_ns());
}

bool dump_trace(const std::string& path) {
  return obs::Tracer::global().dump(path);
}

void trace_reset() { obs::Tracer::global().reset(); }

}  // namespace gmt
