#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace gmt::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{true};
thread_local TlsShardRef t_shard;

namespace {

std::once_flag g_env_once;

void apply_env() {
  if (const char* v = std::getenv("GMT_OBS"))
    g_metrics_enabled.store(v[0] != '0', std::memory_order_relaxed);
}

// Live registries, creation order; guarded by g_registry_mu.
std::mutex g_registry_mu;
std::vector<Registry*> g_registries;

// Final snapshots of destroyed registries, merged by scope (guarded by
// g_registry_mu). Registries die with their cluster, but stats should not:
// gmt::stats_snapshot() after gmt::run() returns still sees the run.
std::vector<std::pair<std::string, Snapshot>> g_retired;

// Bounded interval-sample history (oldest dropped past the cap).
constexpr std::size_t kMaxIntervalSamples = 1024;
std::mutex g_interval_mu;
std::deque<IntervalSample> g_interval_history;

}  // namespace
}  // namespace detail

void apply_metrics_env_once() {
  std::call_once(detail::g_env_once, detail::apply_env);
}

bool enabled() { return detail::metrics_on(); }

void set_enabled(bool on) {
  // Lock in the explicit choice before any lazy env read can race it.
  std::call_once(detail::g_env_once, [] {});
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t Snapshot::gauge(std::string_view name) const {
  for (const GaugeValue& g : gauges)
    if (g.name == name) return g.value;
  return 0;
}

const HistogramValue* Snapshot::histogram(std::string_view name) const {
  for (const HistogramValue& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  if (other.wall_ns > wall_ns) wall_ns = other.wall_ns;
  for (const CounterValue& c : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const CounterValue& x) { return x.name == c.name; });
    if (it == counters.end())
      counters.push_back(c);
    else
      it->value += c.value;
  }
  for (const GaugeValue& g : other.gauges) {
    auto it = std::find_if(gauges.begin(), gauges.end(),
                           [&](const GaugeValue& x) { return x.name == g.name; });
    if (it == gauges.end())
      gauges.push_back(g);
    else
      it->value += g.value;
  }
  for (const HistogramValue& h : other.histograms) {
    auto it = std::find_if(
        histograms.begin(), histograms.end(),
        [&](const HistogramValue& x) { return x.name == h.name; });
    if (it == histograms.end()) {
      histograms.push_back(h);
    } else {
      it->count += h.count;
      it->sum += h.sum;
      for (std::uint32_t b = 0; b < kHistogramBuckets; ++b)
        it->buckets[b] += h.buckets[b];
    }
  }
}

namespace {
std::atomic<std::uint64_t> g_next_registry_uid{1};
}  // namespace

Registry::Registry(std::string scope)
    : scope_(std::move(scope)),
      uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {
  std::call_once(detail::g_env_once, detail::apply_env);
  std::lock_guard<std::mutex> lock(detail::g_registry_mu);
  detail::g_registries.push_back(this);
}

Registry::~Registry() {
  Snapshot last = snapshot();  // before deregistering (takes only mu_)
  std::lock_guard<std::mutex> lock(detail::g_registry_mu);
  if (!last.empty()) {
    auto& retired = detail::g_retired;
    auto it = std::find_if(
        retired.begin(), retired.end(),
        [&](const auto& entry) { return entry.first == scope_; });
    if (it == retired.end())
      retired.emplace_back(scope_, std::move(last));
    else
      it->second.merge(last);
  }
  auto& regs = detail::g_registries;
  regs.erase(std::remove(regs.begin(), regs.end(), this), regs.end());
}

std::uint32_t Registry::reserve(std::string name, Kind kind,
                                std::uint32_t cells) {
  std::lock_guard<std::mutex> lock(mu_);
  // Same-name re-registration returns the existing slot, so stats structs
  // can be rebound without doubling cell usage.
  for (const Def& def : defs_)
    if (def.name == name) {
      GMT_CHECK_MSG(def.kind == kind, "metric re-registered as another kind");
      return def.base;
    }
  GMT_CHECK_MSG(cursor_ + cells <= kMaxCells,
                "metrics registry shard budget exhausted");
  const std::uint32_t base = cursor_;
  cursor_ += cells;
  defs_.push_back(Def{std::move(name), kind, base});
  return base;
}

Counter Registry::counter(std::string name) {
  return Counter(this, reserve(std::move(name), Kind::kCounter, 1));
}

Gauge Registry::gauge(std::string name) {
  return Gauge(this, reserve(std::move(name), Kind::kGauge, 1));
}

Histogram Registry::histogram(std::string name) {
  return Histogram(
      this, reserve(std::move(name), Kind::kHistogram, kHistogramBuckets + 1));
}

detail::Shard* Registry::attach_thread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_)
    if (shard->owner == self) return shard.get();
  shards_.push_back(std::make_unique<detail::Shard>());
  shards_.back()->owner = self;
  return shards_.back().get();
}

std::uint64_t Registry::merged(std::uint32_t cell) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    total += shard->cells[cell].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Counter::read() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  return reg_->merged(cell_);
}

std::int64_t Gauge::read() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  return static_cast<std::int64_t>(reg_->merged(cell_));
}

HistogramValue Histogram::read() const {
  HistogramValue out;
  if (reg_ == nullptr) return out;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
    out.buckets[b] = reg_->merged(base_ + b);
    out.count += out.buckets[b];
  }
  out.sum = reg_->merged(base_ + kHistogramBuckets);
  return out;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.wall_ns = wall_ns();
  if (!detail::metrics_on()) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Def& def : defs_) {
    switch (def.kind) {
      case Kind::kCounter:
        snap.counters.push_back(CounterValue{def.name, merged(def.base)});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(GaugeValue{
            def.name, static_cast<std::int64_t>(merged(def.base))});
        break;
      case Kind::kHistogram: {
        HistogramValue h;
        h.name = def.name;
        for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
          h.buckets[b] = merged(def.base + b);
          h.count += h.buckets[b];
        }
        h.sum = merged(def.base + kHistogramBuckets);
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

Snapshot global_snapshot() {
  Snapshot total;
  total.wall_ns = wall_ns();
  if (!detail::metrics_on()) return total;
  std::lock_guard<std::mutex> lock(detail::g_registry_mu);
  for (const auto& [scope, snap] : detail::g_retired) total.merge(snap);
  for (const Registry* reg : detail::g_registries)
    total.merge(reg->snapshot());
  return total;
}

std::vector<std::pair<std::string, Snapshot>> scoped_snapshots() {
  std::vector<std::pair<std::string, Snapshot>> out;
  if (!detail::metrics_on()) return out;
  std::lock_guard<std::mutex> lock(detail::g_registry_mu);
  out = detail::g_retired;  // copies; live registries merge on top
  for (const Registry* reg : detail::g_registries) {
    auto it = std::find_if(out.begin(), out.end(), [&](const auto& entry) {
      return entry.first == reg->scope();
    });
    if (it == out.end())
      out.emplace_back(reg->scope(), reg->snapshot());
    else
      it->second.merge(reg->snapshot());
  }
  return out;
}

void clear_retired_snapshots() {
  std::lock_guard<std::mutex> lock(detail::g_registry_mu);
  detail::g_retired.clear();
}

void push_interval_sample(IntervalSample sample) {
  std::lock_guard<std::mutex> lock(detail::g_interval_mu);
  detail::g_interval_history.push_back(std::move(sample));
  if (detail::g_interval_history.size() > detail::kMaxIntervalSamples)
    detail::g_interval_history.pop_front();
}

std::vector<IntervalSample> interval_history() {
  std::lock_guard<std::mutex> lock(detail::g_interval_mu);
  return std::vector<IntervalSample>(detail::g_interval_history.begin(),
                                     detail::g_interval_history.end());
}

void clear_interval_history() {
  std::lock_guard<std::mutex> lock(detail::g_interval_mu);
  detail::g_interval_history.clear();
}

}  // namespace gmt::obs
