#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace gmt::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
namespace {
// Tracks die on Tracer::reset(); the epoch invalidates cached TLS
// pointers so threads re-attach instead of touching a freed track.
std::atomic<std::uint64_t> g_track_epoch{1};
struct TlsTrackRef {
  TraceTrack* track = nullptr;
  std::uint64_t epoch = 0;
};
thread_local TlsTrackRef t_track;
}  // namespace
}  // namespace detail

void TraceTrack::push(TraceEvent event) {
  if (ring_.empty()) {
    ring_.resize(capacity_);
  }
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  ring_[head % capacity_] = event;
  // Release so a dump racing an active owner reads fully-written slots for
  // every index below the head it observes.
  head_.store(head + 1, std::memory_order_release);
}

Tracer::Tracer() : ring_capacity_(64 * 1024), epoch_ns_(wall_ns()) {
  if (const char* v = std::getenv("GMT_TRACE_BUF")) {
    const unsigned long parsed = std::strtoul(v, nullptr, 10);
    if (parsed >= 16) ring_capacity_ = static_cast<std::uint32_t>(parsed);
  }
  if (const char* v = std::getenv("GMT_TRACE"))
    detail::g_trace_enabled.store(v[0] != '0', std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

TraceTrack* Tracer::make_track(std::string name, bool virtual_time) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(std::make_unique<TraceTrack>());
  TraceTrack* track = tracks_.back().get();
  track->capacity_ = ring_capacity_;
  track->tid_ = static_cast<std::uint32_t>(tracks_.size());
  track->virtual_time_ = virtual_time;
  if (name.empty()) name = "thread " + std::to_string(track->tid_);
  track->set_name(std::move(name));
  return track;
}

TraceTrack* Tracer::thread_track() {
  detail::TlsTrackRef& ref = detail::t_track;
  const std::uint64_t epoch =
      detail::g_track_epoch.load(std::memory_order_acquire);
  if (ref.track == nullptr || ref.epoch != epoch) {
    ref.track = make_track(std::string(), /*virtual_time=*/false);
    ref.epoch = epoch;
  }
  return ref.track;
}

void Tracer::name_thread_track(std::string name) {
  thread_track()->set_name(std::move(name));
}

TraceTrack* Tracer::new_track(std::string name, bool virtual_time) {
  return make_track(std::move(name), virtual_time);
}

bool Tracer::dump(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::lock_guard<std::mutex> lock(mu_);
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) std::fputc(',', f);
    first = false;
  };

  for (const auto& track : tracks_) {
    const std::uint64_t head = track->head_.load(std::memory_order_acquire);
    if (head == 0) continue;  // never recorded: omit entirely

    emit_sep();
    std::fprintf(f,
                 "\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 track->tid_, track->name().c_str());

    const std::uint64_t cap = track->capacity_;
    const std::uint64_t count = head < cap ? head : cap;
    const std::uint64_t start = head - count;
    for (std::uint64_t i = start; i < head; ++i) {
      const TraceEvent& e = track->ring_[i % cap];
      std::uint64_t ts_raw = e.ts_ns;
      if (!track->virtual_time_)
        ts_raw = ts_raw >= epoch_ns_ ? ts_raw - epoch_ns_ : 0;
      // Timestamps are microseconds (double); %.3f keeps ns resolution.
      const double ts = static_cast<double>(ts_raw) / 1000.0;
      emit_sep();
      switch (e.phase) {
        case 'i':
          std::fprintf(f,
                       "\n{\"ph\":\"i\",\"pid\":0,\"tid\":%u,\"name\":\"%s\","
                       "\"ts\":%.3f,\"s\":\"t\",\"args\":{\"v\":%" PRIu64 "}}",
                       track->tid_, e.name, ts, e.arg);
          break;
        case 'C':
          std::fprintf(f,
                       "\n{\"ph\":\"C\",\"pid\":0,\"tid\":%u,\"name\":\"%s\","
                       "\"ts\":%.3f,\"args\":{\"value\":%" PRIu64 "}}",
                       track->tid_, e.name, ts, e.arg);
          break;
        default:  // 'X'
          std::fprintf(f,
                       "\n{\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"name\":\"%s\","
                       "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"v\":%" PRIu64
                       "}}",
                       track->tid_, e.name, ts,
                       static_cast<double>(e.dur_ns) / 1000.0, e.arg);
          break;
      }
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Bump the epoch first so cached TLS track pointers are invalidated
  // before their targets die. Only safe when nothing is recording.
  detail::g_track_epoch.fetch_add(1, std::memory_order_acq_rel);
  tracks_.clear();
  epoch_ns_ = wall_ns();
}

void trace_instant(const char* name, std::uint64_t arg) {
  if (!trace_on()) return;
  Tracer::global().thread_track()->instant(name, wall_ns(), arg);
}

void trace_counter(const char* name, std::uint64_t value) {
  if (!trace_on()) return;
  Tracer::global().thread_track()->counter(name, wall_ns(), value);
}

void name_thread_track(std::string name) {
  Tracer::global().name_thread_track(std::move(name));
}

void init_from_env() {
  (void)Tracer::global();  // applies GMT_TRACE / GMT_TRACE_BUF once
  apply_metrics_env_once();
}

}  // namespace gmt::obs
