// Typed metrics registry (observability subsystem, part 1).
//
// A Registry owns a set of named instruments — counters, gauges, log2
// histograms — registered once at startup. Writes go to per-thread
// *shards*: each OS thread that touches a registry gets its own
// cache-line-padded array of relaxed atomic cells, so the hot path is one
// predicted branch (the global enable flag) plus one uncontended
// fetch_add. snapshot() merges the shards under the registration mutex.
//
// Instrument handles (Counter/Gauge/Histogram) are plain {registry, slot}
// pairs: trivially copyable, safe to keep in stats structs, and inert when
// default-constructed (writes drop) — so stats structs work unbound in
// unit tests that never create a registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "gmt/obs.hpp"

namespace gmt::obs {

namespace detail {
// Process-wide enable flag, mirrored from GMT_OBS / set_enabled so the hot
// path never re-reads the environment.
extern std::atomic<bool> g_metrics_enabled;
inline bool metrics_on() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// One thread's private slice of a registry: a padded array of relaxed
// atomic cells, indexed by instrument slot.
struct alignas(kCacheLine) Shard {
  static constexpr std::uint32_t kMaxCells = 512;
  std::thread::id owner;
  std::atomic<std::uint64_t> cells[kMaxCells];
  Shard() {
    for (auto& cell : cells) cell.store(0, std::memory_order_relaxed);
  }
};

// Per-thread shard cache: one entry, keyed by registry uid. Runtime
// threads only ever write to their own node's registry, so a single slot
// is a 100% hit; alternating threads (tests) just re-scan on switch.
struct TlsShardRef {
  std::uint64_t registry_uid = 0;
  Shard* shard = nullptr;
};
extern thread_local TlsShardRef t_shard;
}  // namespace detail

class Registry;

// Monotonic counter. add() is wait-free on the caller's shard.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t delta = 1);
  std::uint64_t read() const;  // merged across shards (not hot)

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t cell) : reg_(reg), cell_(cell) {}
  Registry* reg_ = nullptr;
  std::uint32_t cell_ = 0;
};

// Signed up/down gauge. Shards accumulate deltas in two's complement; the
// merged sum is the current value.
class Gauge {
 public:
  Gauge() = default;
  inline void add(std::int64_t delta);
  void inc() { add(1); }
  void dec() { add(-1); }
  std::int64_t read() const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t cell) : reg_(reg), cell_(cell) {}
  Registry* reg_ = nullptr;
  std::uint32_t cell_ = 0;
};

// Log2-bucketed histogram of non-negative values (latencies in ns, sizes
// in bytes, occupancies). Bucket 0 counts zeros; bucket b >= 1 counts
// values in [2^(b-1), 2^b - 1]. A sum cell rides along so means need no
// separate counter.
class Histogram {
 public:
  Histogram() = default;
  inline void observe(std::uint64_t value);
  HistogramValue read() const;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t base) : reg_(reg), base_(base) {}
  Registry* reg_ = nullptr;
  std::uint32_t base_ = 0;  // kHistogramBuckets bucket cells + 1 sum cell
};

// One named metrics scope (the runtime creates one per node). Thread
// shards attach lazily on first write; registration happens in
// constructors, before the hot path runs.
class Registry {
 public:
  // `scope` labels this registry in reports ("node0", "test", ...).
  explicit Registry(std::string scope);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  const std::string& scope() const { return scope_; }

  Counter counter(std::string name);
  Gauge gauge(std::string name);
  Histogram histogram(std::string name);

  // Merged view of every instrument. Empty (no entries) when metrics are
  // globally disabled.
  Snapshot snapshot() const;

  // Shard cells a single thread may hold across all instruments of one
  // registry. Registration past this budget is a startup error.
  static constexpr std::uint32_t kMaxCells = detail::Shard::kMaxCells;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Def {
    std::string name;
    Kind kind;
    std::uint32_t base;  // first cell
  };

  inline std::atomic<std::uint64_t>& local_cell(std::uint32_t cell);
  detail::Shard* attach_thread();  // find or create this thread's shard
  std::uint32_t reserve(std::string name, Kind kind, std::uint32_t cells);
  std::uint64_t merged(std::uint32_t cell) const;  // callers hold mu_

  const std::string scope_;
  const std::uint64_t uid_;  // never reused; guards stale TLS shard caches
  mutable std::mutex mu_;
  std::vector<Def> defs_;
  std::uint32_t cursor_ = 0;
  std::vector<std::unique_ptr<detail::Shard>> shards_;
};

inline std::atomic<std::uint64_t>& Registry::local_cell(std::uint32_t cell) {
  detail::TlsShardRef& ref = detail::t_shard;
  if (ref.registry_uid != uid_) {
    ref.shard = attach_thread();
    ref.registry_uid = uid_;
  }
  return ref.shard->cells[cell];
}

inline void Counter::add(std::uint64_t delta) {
  if (!detail::metrics_on() || reg_ == nullptr) return;
  reg_->local_cell(cell_).fetch_add(delta, std::memory_order_relaxed);
}

inline void Gauge::add(std::int64_t delta) {
  if (!detail::metrics_on() || reg_ == nullptr) return;
  reg_->local_cell(cell_).fetch_add(static_cast<std::uint64_t>(delta),
                                    std::memory_order_relaxed);
}

inline void Histogram::observe(std::uint64_t value) {
  if (!detail::metrics_on() || reg_ == nullptr) return;
  std::uint32_t bucket = 0;
  if (value != 0) {
    bucket = 64u - static_cast<std::uint32_t>(__builtin_clzll(value));
    if (bucket > kHistogramBuckets - 1) bucket = kHistogramBuckets - 1;
  }
  reg_->local_cell(base_ + bucket).fetch_add(1, std::memory_order_relaxed);
  reg_->local_cell(base_ + kHistogramBuckets)
      .fetch_add(value, std::memory_order_relaxed);
}

// Applies the GMT_OBS environment override once (also done lazily by the
// first Registry construction).
void apply_metrics_env_once();

// Merged snapshot of every live Registry in the process (the backing store
// of gmt::stats_snapshot()).
Snapshot global_snapshot();

// Per-scope snapshots of every live Registry, in creation order (the
// backing store of gmt::stats_report()'s per-node rows). Destroyed
// registries contribute their final snapshot under the same scope, so
// reports written after a cluster shut down still show the run.
std::vector<std::pair<std::string, Snapshot>> scoped_snapshots();

// Drops the retained snapshots of destroyed registries (tests).
void clear_retired_snapshots();

// Appends one sample to the bounded process-wide interval history.
void push_interval_sample(IntervalSample sample);

}  // namespace gmt::obs
