// Periodic interval snapshots (observability subsystem, part 3).
//
// A Sampler owns one background thread that invokes a tick callback every
// `interval_ms` until destroyed. The cluster uses it (GMT_OBS_INTERVAL_MS)
// to record merged per-interval snapshots into the process history and to
// emit counter series onto the trace, making aggregation efficiency and
// queue depth visible over time instead of only at exit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace gmt::obs {

class Sampler {
 public:
  // Starts ticking immediately; `tick(now_ns)` runs on the sampler thread.
  Sampler(std::uint64_t interval_ms, std::function<void(std::uint64_t)> tick);
  ~Sampler();  // joins; runs one final tick so short runs record >= 1 sample
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

 private:
  void loop(std::uint64_t interval_ms);

  std::function<void(std::uint64_t)> tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gmt::obs
