// Ring-buffer event tracer (observability subsystem, part 2).
//
// Events are recorded into per-*track* rings: every OS thread that traces
// gets its own track (no synchronisation on the record path beyond one
// relaxed head bump), and simulators allocate named tracks explicitly so
// virtual-time events stay on their own timelines. Each ring holds the
// most recent GMT_TRACE_BUF events (default 64K) — a run that outlives the
// ring keeps the tail, which is what you want when staring at "why did the
// end of the run stall".
//
// dump() exports everything as Chrome trace_event JSON: 'X' complete
// events for spans, 'i' instants, 'C' counter series — loadable in
// chrome://tracing / Perfetto with no post-processing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gmt::obs {

namespace detail {
// Tracing armed? Mirrored from GMT_TRACE / gmt::trace_enable so call sites
// pay one relaxed load when off.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool trace_on() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

struct TraceEvent {
  const char* name = nullptr;  // static storage (string literals)
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // 'X' only
  std::uint64_t arg = 0;     // free-form value ("v" in the JSON args)
  char phase = 'X';          // 'X' complete, 'i' instant, 'C' counter
};

// One timeline. Written by exactly one thread (its owner); dumped under
// the tracer mutex after the owner quiesced or between head publications.
class TraceTrack {
 public:
  void complete(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                std::uint64_t arg = 0) {
    push(TraceEvent{name, ts_ns, dur_ns, arg, 'X'});
  }
  void instant(const char* name, std::uint64_t ts_ns, std::uint64_t arg = 0) {
    push(TraceEvent{name, ts_ns, 0, arg, 'i'});
  }
  void counter(const char* name, std::uint64_t ts_ns, std::uint64_t value) {
    push(TraceEvent{name, ts_ns, 0, value, 'C'});
  }

  // Nested span annotations (gmt::trace_begin / trace_end).
  void begin(const char* name, std::uint64_t ts_ns) {
    if (depth_ < kMaxSpanDepth) open_[depth_] = OpenSpan{name, ts_ns};
    ++depth_;
  }
  void end(std::uint64_t ts_ns) {
    if (depth_ == 0) return;  // unmatched end: ignore
    --depth_;
    if (depth_ < kMaxSpanDepth)
      complete(open_[depth_].name, open_[depth_].ts_ns,
               ts_ns - open_[depth_].ts_ns);
  }

  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

 private:
  friend class Tracer;
  static constexpr std::uint32_t kMaxSpanDepth = 16;
  struct OpenSpan {
    const char* name;
    std::uint64_t ts_ns;
  };

  void push(TraceEvent event);

  std::vector<TraceEvent> ring_;  // allocated on first push
  std::uint32_t capacity_ = 0;
  // Total events ever pushed; ring_[i] for i < min(head, capacity) valid.
  std::atomic<std::uint64_t> head_{0};
  OpenSpan open_[kMaxSpanDepth] = {};
  std::uint32_t depth_ = 0;
  std::uint32_t tid_ = 0;       // JSON tid
  bool virtual_time_ = false;   // sim tracks: do not rebase to the epoch
  std::string name_;
};

class Tracer {
 public:
  // Process singleton. First call applies GMT_TRACE / GMT_TRACE_BUF.
  static Tracer& global();

  void set_enabled(bool on) {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  // The calling thread's track, created (and auto-named "thread N") on
  // first use.
  TraceTrack* thread_track();

  // Names the calling thread's track ("node0/worker1", ...).
  void name_thread_track(std::string name);

  // A standalone track on its own timeline; `virtual_time` timestamps are
  // emitted as-is instead of rebased to the process trace epoch.
  TraceTrack* new_track(std::string name, bool virtual_time = false);

  // Writes all tracks as Chrome trace JSON. False on I/O failure.
  bool dump(const std::string& path);

  // Drops every recorded event and track. Only safe when no other thread
  // is recording (tests).
  void reset();

 private:
  Tracer();
  TraceTrack* make_track(std::string name, bool virtual_time);

  std::mutex mu_;
  std::vector<std::unique_ptr<TraceTrack>> tracks_;
  std::uint32_t ring_capacity_;
  std::uint64_t epoch_ns_;
};

// ---- zero-argument conveniences for runtime call sites ----
// All of these no-op (one relaxed load) when tracing is off; the caller
// should still guard timestamp *collection* behind trace_on().

inline void trace_complete(const char* name, std::uint64_t begin_ns,
                           std::uint64_t end_ns, std::uint64_t arg = 0) {
  if (!trace_on()) return;
  Tracer::global().thread_track()->complete(name, begin_ns, end_ns - begin_ns,
                                            arg);
}

void trace_instant(const char* name, std::uint64_t arg = 0);
void trace_counter(const char* name, std::uint64_t value);
void name_thread_track(std::string name);

// Applies GMT_OBS / GMT_TRACE once (idempotent); the runtime and the
// simulator call this at startup so env-only users need no code changes.
void init_from_env();

}  // namespace gmt::obs
