// Simulated graph kernels: BFS (GMT / UPC / Cray XMT models) and Graph
// Random Walk (GMT / MPI models) for Figures 7, 8 and 9.
#pragma once

#include <cstdint>

#include "graph/generator.hpp"
#include "sim/cost_model.hpp"
#include "sim/spmd_sim.hpp"

namespace gmt::sim {

struct GraphKernelResult {
  std::uint64_t edges_traversed = 0;
  std::uint64_t visited = 0;  // BFS only
  std::uint64_t levels = 0;   // BFS only
  double seconds = 0;         // virtual time
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

// ---- BFS (paper Figs. 7 and 8) ----

// GMT model: the real level-synchronous queue-based kernel executed over
// the simulated runtime (CAS claims, frontier appends, counter atomics).
GraphKernelResult sim_bfs_gmt(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t root, const SimGmtConfig& config,
                              const GmtCosts& costs,
                              std::uint64_t chunk = 0);

// UPC model: one SPMD thread per node, blocking single-word reads and
// remote CAS per edge, barrier per level.
GraphKernelResult sim_bfs_upc(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t root, const SpmdCosts& costs);

// Cray XMT model: 128 hardware streams per processor over a uniformly
// scrambled memory — enough inherent latency tolerance that per-level time
// is issue-rate-bound. Calibrated comparator (see DESIGN.md): per-processor
// saturated traversal rate plus a per-level synchronisation overhead.
struct XmtModel {
  double edge_rate_per_proc = 20e6;  // saturated edges/s per processor
  double level_overhead_s = 4e-3;    // full-machine sync + restart
  // Parallelism ramp: a level with fewer edges than this per processor
  // cannot saturate the streams.
  double min_parallel_edges = 4096;
};
GraphKernelResult sim_bfs_xmt(const graph::Csr& csr, std::uint32_t processors,
                              std::uint64_t root, const XmtModel& model = {});

// ---- Graph Random Walk (paper Fig. 9) ----

// GMT model: W walker tasks, three fine-grained reads per step.
GraphKernelResult sim_grw_gmt(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t walkers, std::uint64_t length,
                              const SimGmtConfig& config,
                              const GmtCosts& costs, std::uint64_t seed = 42);

// MPI model: vertex-partitioned ranks; a walk leaving the local partition
// is delegated to the owner with one fine-grained message (the paper's
// measured baseline — §V-C notes that batching "is possible", i.e. the
// plain version sends small messages per delegation). Each rank is a
// serial resource paying library envelope costs per send and per receive.
GraphKernelResult sim_grw_mpi(const graph::Csr& csr, std::uint32_t ranks,
                              std::uint64_t walkers, std::uint64_t length,
                              const SpmdCosts& costs, std::uint64_t seed = 42);

// The batched variant (end-of-round all-to-all delegation exchange +
// allreduce): the paper's suggested application-level aggregation,
// reproduced as an ablation comparator.
GraphKernelResult sim_grw_mpi_batched(const graph::Csr& csr,
                                      std::uint32_t ranks,
                                      std::uint64_t walkers,
                                      std::uint64_t length,
                                      const SpmdCosts& costs,
                                      std::uint64_t seed = 42);

}  // namespace gmt::sim
