// Calibrated costs for the simulated GMT node (paper hardware: Olympus,
// AMD Opteron 6272 @ 2.1 GHz, QDR InfiniBand).
//
// Anchors from the paper:
//   - context switch ~500-590 cycles (Table III);
//   - 64 KB aggregated transfers sustain 2630 MB/s vs MPI's 2815 MB/s
//     (Fig. 2) — i.e. runtime overhead costs ~7% at full buffers;
//   - 8-byte blocking puts: 8.55 MB/s at 1024 tasks, 72.48 MB/s at 15360
//     tasks (Fig. 5) — per-command handling in the hundreds of cycles.
#pragma once

#include <cstdint>

#include "net/network_model.hpp"

namespace gmt::sim {

struct GmtCosts {
  double ghz = 2.1;  // Olympus clock

  // Task switching (paper Table III).
  double ctx_switch_cycles = 550;

  // Scheduler overhead per task activation: queue churn, runnability
  // scans, itb bookkeeping. Calibrated with ctx_switch + cmd_gen so a
  // worker sustains ~0.6 M blocking-op activations/s — which lands the
  // 15-worker node at the paper's ~9 M puts/s (72.48 MB/s of 8-byte puts
  // at 15360 tasks, Fig. 5).
  double sched_cycles = 2500;

  // Worker-side cost to generate one command into a command block.
  double cmd_gen_cycles = 300;

  // Helper-side cost to parse and execute one command (and emit a reply).
  double cmd_exec_cycles = 350;

  // Aggregation copy cost per byte (block -> buffer memcpy).
  double copy_cycles_per_byte = 0.12;

  // Fixed cost per aggregation pass (queue ops, buffer management).
  double aggregate_cycles = 400;

  // Cost for a worker to adopt a task from an iteration block.
  double task_spawn_cycles = 450;

  net::NetworkModel net = net::NetworkModel::olympus();

  double cycles_to_s(double cycles) const { return cycles / (ghz * 1e9); }
};

// The GMT node configuration knobs the simulation honours (paper Table IV).
struct SimGmtConfig {
  std::uint32_t num_workers = 15;
  std::uint32_t num_helpers = 15;
  std::uint32_t max_tasks_per_worker = 1024;
  std::uint32_t buffer_size = 64 * 1024;
  std::uint32_t cmd_header_bytes = 48;
  // Force-flush deadline for partial buffers. The paper reports typical
  // end-to-end latencies "in the order of 10^6 cycles" (~0.5 ms at 2.1
  // GHz): with this deadline on both the request and the reply leg, a
  // sparse-traffic blocking op sees ~0.45 ms — which reproduces Fig. 5's
  // low small-task-count rates while leaving saturated traffic (full
  // buffers) unaffected.
  double agg_timeout_s = 200e-6;
  bool aggregation_enabled = true;  // ablation knob
  // Derive the flush deadline per destination from the observed arrival
  // rate instead of the fixed agg_timeout_s above (mirrors the runtime's
  // GMT_ADAPTIVE_FLUSH controller): heavy traffic waits for full buffers,
  // sparse traffic flushes near the adaptive floor.
  bool adaptive_flush = false;
};

}  // namespace gmt::sim
