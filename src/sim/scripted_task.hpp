// ScriptedTask: the common shape of simulated kernels. A task owns an
// iteration range; per iteration a refill callback applies the kernel's
// semantics against host-side state and scripts the operations (traffic)
// that iteration would issue; the runtime model replays them with real
// blocking behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/gmt_sim.hpp"

namespace gmt::sim {

class ScriptedTask final : public SimTask {
 public:
  // refill(iteration, &ops): append this iteration's operations (may append
  // none — an iteration with purely local work).
  using Refill = std::function<void(std::uint64_t, std::vector<SimOp>*)>;

  ScriptedTask(std::uint64_t begin, std::uint64_t end, Refill refill)
      : cursor_(begin), end_(end), refill_(std::move(refill)) {}

  Status next(SimOp* op) override {
    while (pending_.empty()) {
      if (cursor_ >= end_) return Status::kDone;
      scratch_.clear();
      refill_(cursor_++, &scratch_);
      pending_.insert(pending_.end(), scratch_.begin(), scratch_.end());
    }
    *op = pending_.front();
    pending_.pop_front();
    return Status::kOp;
  }

 private:
  std::uint64_t cursor_;
  std::uint64_t end_;
  Refill refill_;
  std::vector<SimOp> scratch_;
  std::deque<SimOp> pending_;
};

// Block-distribution ownership arithmetic matching the real runtime's
// ArrayMeta (8-byte-aligned blocks over `nodes` partitions).
inline std::uint32_t owner_of_word(std::uint64_t word_index,
                                   std::uint64_t total_words,
                                   std::uint32_t nodes) {
  const std::uint64_t block = (total_words + nodes - 1) / nodes;
  const std::uint64_t owner = word_index / (block ? block : 1);
  return static_cast<std::uint32_t>(owner < nodes ? owner : nodes - 1);
}

}  // namespace gmt::sim
