// Simulated GMT runtime: the paper's node architecture (workers multiplexing
// tasks, per-destination aggregation with size/timeout flushing, helper
// service, one network endpoint per node) as deterministic virtual-time
// actors.
//
// Division of labour with the workloads: a SimTask executes its *semantics*
// eagerly against host-side state (real BFS parent claims, real hash-map
// mutations — the DES is single-threaded, so this is safe) and describes
// each operation's *traffic* (destination, request/reply bytes, blocking)
// to the runtime model, which reproduces the queueing behaviour: tasks
// block until their reply returns, commands aggregate into buffers, links
// serialise, helpers service buffers in arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace gmt::sim {

// One operation a task issues.
struct SimOp {
  std::uint32_t dst = 0;             // target node
  std::uint32_t request_payload = 0; // bytes after the 48-byte header
  std::uint32_t reply_payload = 0;   // bytes after the reply header
  double work_cycles = 0;            // app compute preceding the op
  bool blocking = true;              // task suspends until the reply lands
};

// A user task: produces operations until done. The runtime passes the
// op buffer; semantics are applied by the task itself when producing.
class SimTask {
 public:
  virtual ~SimTask() = default;
  enum class Status { kOp, kDone };
  virtual Status next(SimOp* op) = 0;
};

// Builds the task that executes iterations [begin, end) on `node`.
using TaskFactory = std::function<std::unique_ptr<SimTask>(
    std::uint32_t node, std::uint64_t begin, std::uint64_t end)>;

class SimGmtRuntime {
 public:
  SimGmtRuntime(Engine* engine, std::uint32_t num_nodes,
                const SimGmtConfig& config, const GmtCosts& costs);
  ~SimGmtRuntime();

  SimGmtRuntime(const SimGmtRuntime&) = delete;
  SimGmtRuntime& operator=(const SimGmtRuntime&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  Engine& engine() { return *engine_; }

  // Distributes `iterations` over all nodes in contiguous shares, carves
  // them into `chunk`-sized tasks, and calls on_complete (in virtual time)
  // when every iteration finished. Spawn commands from node `origin` incur
  // network traffic like any other command.
  void parfor(std::uint64_t iterations, std::uint64_t chunk,
              TaskFactory factory, std::function<void()> on_complete,
              std::uint32_t origin = 0);

  // All iterations on one node (the GMT_SPAWN_LOCAL pattern — e.g. the
  // paper's two-node put experiments run every task on node 0).
  void parfor_single(std::uint32_t node, std::uint64_t iterations,
                     std::uint64_t chunk, TaskFactory factory,
                     std::function<void()> on_complete);

  // Traffic statistics.
  std::uint64_t network_messages() const { return messages_; }
  std::uint64_t network_bytes() const { return bytes_; }
  std::uint64_t commands() const { return commands_; }

 private:
  struct ParforRec {
    std::uint32_t pending_nodes = 0;
    std::function<void()> on_complete;
  };

  struct ItbSim {
    std::uint64_t next = 0;
    std::uint64_t end = 0;
    std::uint64_t chunk = 1;
    std::uint64_t completed = 0;
    std::uint64_t begin = 0;
    std::uint32_t origin = 0;
    ParforRec* parfor = nullptr;
    std::shared_ptr<TaskFactory> factory;
  };

  struct TaskRec {
    std::unique_ptr<SimTask> logic;
    std::uint32_t node = 0;
    std::uint32_t worker = 0;
    ItbSim* itb = nullptr;
    std::uint64_t iterations = 0;
    std::uint32_t outstanding = 0;  // replies not yet received
    bool blocked = false;
    bool finished = false;  // logic done; zombie until outstanding == 0
    std::uint64_t born_vns = 0;  // virtual birth time (tracing only)
  };

  // What a delivered command does at the destination.
  struct Entry {
    enum class Kind : std::uint8_t { kRequest, kReply, kSpawn, kDone };
    Kind kind = Kind::kRequest;
    std::uint32_t wire_bytes = 0;
    // kRequest: reply routing; kReply: task to credit.
    TaskRec* task = nullptr;
    std::uint32_t reply_payload = 0;
    std::uint32_t src = 0;
    // kSpawn: the iteration block to instantiate at the destination.
    ItbSim* itb = nullptr;
    // kDone: parfor to credit.
    ParforRec* parfor = nullptr;
  };

  struct AggQueue {
    std::vector<Entry> entries;
    std::uint64_t bytes = 0;
    std::uint64_t generation = 0;  // bumped on every send
    // Adaptive flush (config.adaptive_flush): current AIMD deadline.
    // Negative = not yet initialised; the first read seeds it from the
    // configured timeout. Mirrors DestQueue::adaptive_ns in the runtime.
    double deadline_s = -1;
  };

  struct WorkerSim {
    std::deque<TaskRec*> runnable;
    std::uint64_t live_tasks = 0;
    bool tick_scheduled = false;
  };

  struct NodeSim {
    std::vector<WorkerSim> workers;
    std::deque<ItbSim*> itbs;
    std::vector<SimTime> helper_free;
    std::vector<AggQueue> agg;  // per destination
    // Virtual-time trace timelines (null when tracing is off): task
    // lifetimes on one, buffer flushes on the other, in simulated ns.
    obs::TraceTrack* task_track = nullptr;
    obs::TraceTrack* net_track = nullptr;
  };

  NodeSim& node(std::uint32_t n) { return *nodes_[n]; }

  // Virtual nanoseconds for trace timestamps (SimTime is seconds).
  static std::uint64_t vns(SimTime t) {
    return static_cast<std::uint64_t>(t * 1e9);
  }

  void worker_tick(std::uint32_t n, std::uint32_t w);
  void wake_worker(std::uint32_t n, std::uint32_t w);
  void wake_node(std::uint32_t n);  // wake workers that can adopt itbs

  // Runs `task` until it blocks or finishes; returns consumed cycles.
  double run_task(TaskRec* task);
  void finish_task(TaskRec* task);
  void credit_reply(TaskRec* task);
  void complete_iterations(ItbSim* itb, std::uint64_t n,
                           std::uint32_t at_node);

  void append(std::uint32_t src, std::uint32_t dst, Entry entry);
  // Effective flush deadline for one queue: the fixed config value, or the
  // AIMD-tuned deadline when config.adaptive_flush (lazily seeded).
  double flush_deadline_s(AggQueue& queue) const;
  void flush(std::uint32_t src, std::uint32_t dst);
  void deliver(std::uint32_t src, std::uint32_t dst,
               std::vector<Entry> entries, std::uint64_t wire_bytes);
  void execute_entries(std::uint32_t dst, const std::vector<Entry>& entries);

  Engine* engine_;
  const std::uint32_t num_nodes_;
  SimGmtConfig config_;
  GmtCosts costs_;
  std::vector<std::unique_ptr<NodeSim>> nodes_;
  std::vector<SimTime> link_free_;  // per ordered pair
  std::vector<std::unique_ptr<ParforRec>> parfors_;

  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t commands_ = 0;
};

}  // namespace gmt::sim
