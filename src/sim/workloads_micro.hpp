// Micro-workloads on the simulated runtimes: the paper's put-rate
// experiments (Figs. 2, 5, 6) and the raw MPI comparator lines.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/spmd_sim.hpp"

namespace gmt::sim {

struct PutBenchResult {
  std::uint64_t puts = 0;          // completed blocking puts
  std::uint64_t payload_bytes = 0; // application payload moved
  std::uint64_t wire_bytes = 0;    // bytes on the network
  std::uint64_t messages = 0;      // network messages
  double seconds = 0;              // virtual time

  double payload_rate_MBps() const {
    return seconds > 0
               ? static_cast<double>(payload_bytes) / seconds / (1 << 20)
               : 0;
  }
};

struct PutBenchParams {
  std::uint32_t nodes = 2;
  std::uint64_t tasks = 1024;          // total concurrent tasks
  std::uint64_t puts_per_task = 4096;  // blocking puts each (paper value)
  std::uint32_t put_size = 8;          // payload bytes per put
  bool all_nodes_send = false;  // false: node 0 -> node 1 (Fig. 5);
                                // true: every node -> random peers (Fig. 6)
  std::uint64_t seed = 42;
  SimGmtConfig config;
  GmtCosts costs;
};

// GMT blocking-put rate (runs its own engine to quiescence).
PutBenchResult put_bench_gmt(const PutBenchParams& params);

// The MPI comparator of Figs. 5/6: `processes` ranks per node issuing
// back-to-back sends of `put_size` bytes with no aggregation — evaluated
// through the same endpoint model as Table II.
double mpi_send_rate_MBps(std::uint32_t put_size, std::uint32_t processes,
                          const GmtCosts& costs);

}  // namespace gmt::sim
