// Discrete-event simulation engine.
//
// The scaling experiments (Figs. 5-11) need 128-node runs that a one-box
// host cannot execute in real threads; the DES executes the kernels'
// *semantics* directly while advancing a virtual clock with calibrated
// costs for context switches, command handling, aggregation and network
// transfers. Single-threaded and deterministic: same seed, same results.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace gmt::sim {

// Virtual time in seconds.
using SimTime = double;

class Engine {
 public:
  SimTime now() const { return now_; }

  void schedule(SimTime at, std::function<void()> fn) {
    GMT_DCHECK(at >= now_);
    heap_.push(Event{at, seq_++, std::move(fn)});
  }

  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  // Runs one event; false when the calendar is empty.
  bool step() {
    if (heap_.empty()) return false;
    // std::priority_queue::top is const; the function is moved out via the
    // const_cast idiom (the element is popped immediately after).
    Event& top = const_cast<Event&>(heap_.top());
    now_ = top.at;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    fn();
    return true;
  }

  // Runs until quiescence (or the safety cap, to catch runaway models).
  void run(std::uint64_t max_events = ~0ULL) {
    std::uint64_t executed = 0;
    while (step()) {
      GMT_CHECK_MSG(++executed <= max_events, "simulation event cap hit");
    }
  }

  std::uint64_t events_executed() const { return seq_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    bool operator<(const Event& other) const {
      // priority_queue is a max-heap; invert for earliest-first.
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event> heap_;
};

}  // namespace gmt::sim
