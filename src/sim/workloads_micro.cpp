#include "sim/workloads_micro.hpp"

#include "common/rng.hpp"
#include "sim/gmt_sim.hpp"

namespace gmt::sim {

namespace {

// Each task: N blocking puts to a destination (fixed peer, or uniformly
// random among the other nodes).
class PutTask final : public SimTask {
 public:
  PutTask(std::uint32_t node, std::uint32_t nodes, std::uint64_t puts,
          std::uint32_t size, bool random_dst, std::uint64_t seed)
      : node_(node),
        nodes_(nodes),
        remaining_(puts),
        size_(size),
        random_dst_(random_dst),
        rng_(seed) {}

  Status next(SimOp* op) override {
    if (remaining_ == 0) return Status::kDone;
    --remaining_;
    op->dst = random_dst_
                  ? static_cast<std::uint32_t>(
                        (node_ + 1 + rng_.below(nodes_ - 1)) % nodes_)
                  : (node_ + 1) % nodes_;
    op->request_payload = size_;
    op->reply_payload = 0;  // put ack
    op->work_cycles = 50;   // buffer preparation in the application
    op->blocking = true;
    return Status::kOp;
  }

 private:
  std::uint32_t node_;
  std::uint32_t nodes_;
  std::uint64_t remaining_;
  std::uint32_t size_;
  bool random_dst_;
  Xoshiro256 rng_;
};

}  // namespace

PutBenchResult put_bench_gmt(const PutBenchParams& params) {
  Engine engine;
  SimGmtRuntime runtime(&engine, params.nodes, params.config, params.costs);

  PutBenchResult result;
  result.puts = params.tasks * params.puts_per_task;
  result.payload_bytes = result.puts * params.put_size;

  double finish_time = 0;
  const auto factory = [&](std::uint32_t node, std::uint64_t begin,
                           std::uint64_t end) -> std::unique_ptr<SimTask> {
    return std::make_unique<PutTask>(
        node, params.nodes, (end - begin) * params.puts_per_task,
        params.put_size, params.all_nodes_send, params.seed ^ begin);
  };
  const auto on_complete = [&] { finish_time = engine.now(); };

  // One "iteration" = one task; chunk 1 keeps task counts exact.
  if (params.all_nodes_send) {
    runtime.parfor(params.tasks, 1, factory, on_complete);
  } else {
    runtime.parfor_single(0, params.tasks, 1, factory, on_complete);
  }
  engine.run();

  result.seconds = finish_time;
  result.wire_bytes = runtime.network_bytes();
  result.messages = runtime.network_messages();
  return result;
}

double mpi_send_rate_MBps(std::uint32_t put_size, std::uint32_t processes,
                          const GmtCosts& costs) {
  net::MpiEndpointModel model;
  model.link = costs.net;
  model.processes = processes;
  model.threads = 1;
  return model.aggregate_rate_Bps(put_size) / (1 << 20);
}

}  // namespace gmt::sim
