#include "sim/spmd_sim.hpp"

#include <algorithm>

namespace gmt::sim {

SimSpmd::SimSpmd(Engine* engine, std::uint32_t ranks, const SpmdCosts& costs)
    : engine_(engine),
      ranks_(ranks),
      costs_(costs),
      sims_(ranks),
      link_free_(static_cast<std::size_t>(ranks) * ranks, 0) {
  GMT_CHECK(ranks >= 1);
}

void SimSpmd::start(const RankFactory& factory,
                    std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    sims_[r].logic = factory(r);
    engine_->schedule_in(0, [this, r] { step(r); });
  }
}

void SimSpmd::send_message(std::uint32_t src, std::uint32_t dst,
                           std::uint32_t bytes,
                           std::function<void()> on_arrival) {
  SimTime& link = link_free_[static_cast<std::size_t>(src) * ranks_ + dst];
  const SimTime depart = std::max(link, engine_->now());
  const double occupancy = costs_.net.occupancy_s(bytes);
  link = depart + occupancy;
  ++messages_;
  bytes_ += bytes;
  engine_->schedule(depart + occupancy + costs_.net.latency_s,
                    std::move(on_arrival));
}

void SimSpmd::arrive_request(std::uint32_t dst, std::uint32_t src,
                             SpmdOp op) {
  // The owner is a serial resource: service starts when it is free. The
  // receive occupies the owner for the NIC/stack interval (alpha), then
  // the application-level service, then the blocking reply send (library
  // envelope + another NIC interval) — all on the owner's single thread.
  constexpr double kReplySendCycles = 2500;  // MPI_Send software cost
  RankSim& owner = sims_[dst];
  const SimTime start = std::max(owner.busy_until, engine_->now());
  const SimTime finished =
      start + 2 * costs_.net.alpha_s +
      costs_.cycles_to_s(op.service_cycles + kReplySendCycles);
  owner.busy_until = finished;
  engine_->schedule(finished, [this, dst, src, op] {
    send_message(dst, src, op.reply_bytes, [this, src] {
      RankSim& requester = sims_[src];
      GMT_DCHECK(requester.waiting_reply);
      requester.waiting_reply = false;
      step(src);
    });
  });
}

void SimSpmd::release_barrier() {
  barrier_waiting_ = 0;
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    if (sims_[r].in_barrier) {
      sims_[r].in_barrier = false;
      engine_->schedule_in(0, [this, r] { step(r); });
    }
  }
}

void SimSpmd::step(std::uint32_t rank) {
  RankSim& sim = sims_[rank];
  if (sim.done || sim.waiting_reply || sim.in_barrier) return;

  SpmdOp op;
  const RankLogic::Status status = sim.logic->next(&op);

  // Own work also contends with servicing on the serial resource.
  const SimTime start = std::max(sim.busy_until, engine_->now());
  const SimTime after_work = start + costs_.cycles_to_s(op.work_cycles);
  sim.busy_until = after_work;

  switch (status) {
    case RankLogic::Status::kLocal:
      engine_->schedule(after_work, [this, rank] { step(rank); });
      break;
    case RankLogic::Status::kOp: {
      sim.waiting_reply = true;
      // Blocking send: the rank is occupied through the NIC interval.
      sim.busy_until += costs_.net.alpha_s;
      const std::uint32_t dst = op.dst;
      engine_->schedule(sim.busy_until, [this, rank, dst, op] {
        send_message(rank, dst, op.request_bytes, [this, rank, dst, op] {
          arrive_request(dst, rank, op);
        });
      });
      break;
    }
    case RankLogic::Status::kBarrier:
      sim.in_barrier = true;
      engine_->schedule(after_work, [this] {
        if (++barrier_waiting_ == ranks_ - done_count_) release_barrier();
      });
      break;
    case RankLogic::Status::kDone:
      sim.done = true;
      ++done_count_;
      // A straggler barrier must not wait for finished ranks.
      if (barrier_waiting_ > 0 && barrier_waiting_ == ranks_ - done_count_)
        release_barrier();
      if (done_count_ == ranks_ && on_complete_)
        engine_->schedule_in(0, on_complete_);
      break;
  }
}

}  // namespace gmt::sim
