#include "sim/workloads_chma.hpp"

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hash/string_pool.hpp"
#include "sim/gmt_sim.hpp"
#include "sim/scripted_task.hpp"

namespace gmt::sim {

namespace {

// Host mirror of the distributed map (32-byte slots, linear probing) that
// both simulated versions execute their semantics against.
struct HostMap {
  std::uint64_t capacity;
  std::vector<std::uint64_t> tags;
  std::vector<hash::StringKey> keys;

  explicit HostMap(std::uint64_t min_capacity) {
    capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    tags.assign(capacity, 0);
    keys.resize(capacity);
  }

  // Returns the probe count and fills `found`.
  std::uint64_t lookup(const hash::StringKey& key, bool* found) const {
    const std::uint64_t h = hash::hash_key(key);
    for (std::uint64_t probe = 0; probe < capacity; ++probe) {
      const std::uint64_t i = (h + probe) & (capacity - 1);
      if (tags[i] == 0) {
        *found = false;
        return probe + 1;
      }
      if (tags[i] == h && keys[i] == key) {
        *found = true;
        return probe + 1;
      }
    }
    *found = false;
    return capacity;
  }

  // Returns probes used; inserts if room.
  std::uint64_t insert(const hash::StringKey& key) {
    const std::uint64_t h = hash::hash_key(key);
    for (std::uint64_t probe = 0; probe < capacity; ++probe) {
      const std::uint64_t i = (h + probe) & (capacity - 1);
      if (tags[i] == 0) {
        tags[i] = h;
        keys[i] = key;
        return probe + 1;
      }
      if (tags[i] == h && keys[i] == key) return probe + 1;
    }
    return capacity;
  }

  std::uint64_t slot_of(const hash::StringKey& key) const {
    return hash::hash_key(key) & (capacity - 1);
  }
};

}  // namespace

ChmaSimResult sim_chma_gmt(const ChmaSimParams& params,
                           const SimGmtConfig& config,
                           const GmtCosts& costs) {
  Engine engine;
  SimGmtRuntime runtime(&engine, params.nodes, config, costs);

  const std::vector<hash::StringKey> pool =
      hash::generate_pool(params.pool_size, params.seed);
  auto map = std::make_shared<HostMap>(params.map_capacity);
  for (std::uint64_t i = 0; i < params.populate && i < pool.size(); ++i)
    map->insert(pool[i]);

  // Slot words are 32 bytes = 4 words; ownership by slot index over the
  // block-distributed slot array.
  const std::uint64_t slots = map->capacity;
  const auto owner_slot = [&](std::uint64_t slot) {
    return owner_of_word(slot * 4, slots * 4, params.nodes);
  };
  const auto owner_pool = [&](std::uint64_t i) {
    return owner_of_word(i * 3, params.pool_size * 3, params.nodes);
  };

  ChmaSimResult result;
  result.accesses = params.tasks * params.steps;
  double finish = 0;

  runtime.parfor(
      params.tasks, 1,
      [&](std::uint32_t, std::uint64_t begin, std::uint64_t)
          -> std::unique_ptr<SimTask> {
        auto rng = std::make_shared<Xoshiro256>(
            params.seed ^ (begin * 0xbf58476d1ce4e5b9ULL));
        auto current = std::make_shared<hash::StringKey>(
            pool[rng->below(pool.size())]);
        return std::make_unique<ScriptedTask>(
            0, params.steps,
            [&, rng, current](std::uint64_t, std::vector<SimOp>* ops) {
              // Pool fetch for the first step is folded into the miss path.
              bool found = false;
              const std::uint64_t probes = map->lookup(*current, &found);
              const std::uint64_t base = map->slot_of(*current);
              // One tag get per probe; a key get on the hit.
              for (std::uint64_t p = 0; p < probes; ++p)
                ops->push_back(SimOp{
                    owner_slot((base + p) & (map->capacity - 1)), 0, 8, 50,
                    true});
              if (found) {
                ops->push_back(SimOp{
                    owner_slot((base + probes - 1) & (map->capacity - 1)), 0,
                    24, 40, true});
                current->reverse();
                const std::uint64_t ins_probes = map->insert(*current);
                const std::uint64_t ins_base = map->slot_of(*current);
                // CAS per probe; key put on the claimed slot.
                for (std::uint64_t p = 0; p < ins_probes; ++p)
                  ops->push_back(SimOp{
                      owner_slot((ins_base + p) & (map->capacity - 1)), 8, 8,
                      50, true});
                ops->push_back(SimOp{
                    owner_slot((ins_base + ins_probes - 1) &
                               (map->capacity - 1)),
                    24, 0, 40, true});
              } else {
                const std::uint64_t i = rng->below(pool.size());
                *current = pool[i];
                ops->push_back(SimOp{owner_pool(i), 0, 24, 40, true});
              }
            });
      },
      [&] { finish = engine.now(); });
  engine.run();

  result.seconds = finish;
  result.messages = runtime.network_messages();
  result.wire_bytes = runtime.network_bytes();
  return result;
}

ChmaSimResult sim_chma_mpi(const ChmaSimParams& params,
                           const SpmdCosts& costs) {
  Engine engine;
  SimSpmd spmd(&engine, params.nodes, costs);

  const std::vector<hash::StringKey> pool =
      hash::generate_pool(params.pool_size, params.seed);
  // Per-rank sub-tables selected by hash (owner-compute partitioning).
  auto tables = std::make_shared<std::vector<HostMap>>();
  for (std::uint32_t r = 0; r < params.nodes; ++r)
    tables->emplace_back((params.map_capacity + params.nodes - 1) /
                         params.nodes);
  const auto owner = [&](const hash::StringKey& key) {
    return static_cast<std::uint32_t>(hash::hash_key(key) % params.nodes);
  };
  for (std::uint64_t i = 0; i < params.populate && i < pool.size(); ++i)
    (*tables)[owner(pool[i])].insert(pool[i]);

  // Each rank runs its share of the W streams sequentially; each remote
  // step is a 24-byte request + small reply against the owner.
  class Logic final : public RankLogic {
   public:
    Logic(std::uint32_t rank, const ChmaSimParams& params,
          const std::vector<hash::StringKey>* pool,
          std::vector<HostMap>* tables,
          std::function<std::uint32_t(const hash::StringKey&)> owner)
        : rank_(rank),
          params_(params),
          pool_(pool),
          tables_(tables),
          owner_(std::move(owner)),
          rng_(params.seed ^ (rank * 0x2545f4914f6cdd1dULL)) {
      stream_ = rank_;
      if (stream_ < params_.tasks) begin_stream();
    }

    Status next(SpmdOp* op) override {
      for (;;) {
        if (stream_ >= params_.tasks) return Status::kDone;
        if (step_ >= params_.steps) {
          stream_ += stride();
          if (stream_ >= params_.tasks) return Status::kDone;
          begin_stream();
          continue;
        }
        // One step: lookup (+insert on hit) at the owner.
        ++step_;
        bool found = false;
        const std::uint32_t look_owner = owner_(current_);
        const std::uint64_t probes =
            (*tables_)[look_owner].lookup(current_, &found);
        if (found) {
          current_.reverse();
          const std::uint32_t ins_owner = owner_(current_);
          (*tables_)[ins_owner].insert(current_);
          // Model: the lookup round trip; the insert to a (usually
          // different) owner is a second request. Fold both into the
          // dominant one per step plus extra service for the probes.
          if (look_owner != rank_) {
            fill_op(op, look_owner, probes + 2);
            return Status::kOp;
          }
          if (ins_owner != rank_) {
            fill_op(op, ins_owner, 2);
            return Status::kOp;
          }
          op->work_cycles = 600 * static_cast<double>(probes);
          return Status::kLocal;
        }
        current_ = (*pool_)[rng_.below(pool_->size())];
        if (look_owner != rank_) {
          fill_op(op, look_owner, probes);
          return Status::kOp;
        }
        op->work_cycles = 600 * static_cast<double>(probes);
        return Status::kLocal;
      }
    }

   private:
    std::uint32_t stride() const { return params_.nodes; }
    void begin_stream() {
      step_ = 0;
      current_ = (*pool_)[rng_.below(pool_->size())];
    }
    void fill_op(SpmdOp* op, std::uint32_t dst, std::uint64_t probes) {
      op->dst = dst;
      op->request_bytes = 24 + 16;
      op->reply_bytes = 16;
      // Sender-side MPI library cost per message (envelope, matching).
      op->work_cycles = 2500;
      // Receiver-side envelope + the owner's local probe sequence.
      op->service_cycles = 2000 + 300 * static_cast<double>(probes);
    }

    std::uint32_t rank_;
    const ChmaSimParams params_;
    const std::vector<hash::StringKey>* pool_;
    std::vector<HostMap>* tables_;
    std::function<std::uint32_t(const hash::StringKey&)> owner_;
    Xoshiro256 rng_;
    std::uint64_t stream_ = 0;
    std::uint64_t step_ = 0;
    hash::StringKey current_;
  };

  ChmaSimResult result;
  result.accesses = params.tasks * params.steps;
  double finish = 0;
  spmd.start(
      [&](std::uint32_t rank) -> std::unique_ptr<RankLogic> {
        return std::make_unique<Logic>(rank, params, &pool, tables.get(),
                                       owner);
      },
      [&] { finish = engine.now(); });
  engine.run();

  result.seconds = finish;
  result.messages = spmd.network_messages();
  result.wire_bytes = spmd.network_bytes();
  return result;
}

}  // namespace gmt::sim
