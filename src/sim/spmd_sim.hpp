// Simulated SPMD baseline (MPI-like / UPC-like): one serial process per
// node, blocking fine-grained request/reply messaging, no tasking, no
// aggregation.
//
// Each rank is a serial server in virtual time. Its application logic
// yields a stream of actions: local work, a blocking remote request (full
// round trip: per-message overhead + wire + latency each way, plus service
// at the owner, who is itself a contended serial resource), or a barrier.
// Incoming requests are serviced whenever they arrive — the "poll while
// you wait" discipline real codes need to avoid deadlock — consuming the
// rank's serial capacity, which is exactly the contention that strangles
// fine-grained PGAS/MPI codes in the paper's Figures 8, 9 and 11.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace gmt::sim {

struct SpmdOp {
  std::uint32_t dst = 0;
  std::uint32_t request_bytes = 16;     // fine-grained message size
  std::uint32_t reply_bytes = 16;
  double work_cycles = 0;               // local compute before the action
  double service_cycles = 300;          // owner-side handling cost
};

class RankLogic {
 public:
  virtual ~RankLogic() = default;
  enum class Status {
    kOp,       // blocking remote request/reply described in *op
    kLocal,    // only local work (op->work_cycles)
    kBarrier,  // synchronise with all ranks
    kDone,     // this rank's stream is finished
  };
  virtual Status next(SpmdOp* op) = 0;
};

using RankFactory =
    std::function<std::unique_ptr<RankLogic>(std::uint32_t rank)>;

struct SpmdCosts {
  double ghz = 2.1;
  net::NetworkModel net = net::NetworkModel::olympus();
  double cycles_to_s(double cycles) const { return cycles / (ghz * 1e9); }
};

class SimSpmd {
 public:
  SimSpmd(Engine* engine, std::uint32_t ranks, const SpmdCosts& costs);

  // Instantiates logic per rank and starts them; on_complete fires when
  // every rank returned kDone.
  void start(const RankFactory& factory, std::function<void()> on_complete);

  std::uint64_t network_messages() const { return messages_; }
  std::uint64_t network_bytes() const { return bytes_; }

 private:
  struct RankSim {
    std::unique_ptr<RankLogic> logic;
    SimTime busy_until = 0;   // serial-resource horizon (serving + own work)
    bool waiting_reply = false;
    bool in_barrier = false;
    bool done = false;
  };

  void step(std::uint32_t rank);
  void send_message(std::uint32_t src, std::uint32_t dst,
                    std::uint32_t bytes, std::function<void()> on_arrival);
  void arrive_request(std::uint32_t dst, std::uint32_t src, SpmdOp op);
  void release_barrier();

  Engine* engine_;
  const std::uint32_t ranks_;
  SpmdCosts costs_;
  std::vector<RankSim> sims_;
  std::vector<SimTime> link_free_;
  std::uint32_t barrier_waiting_ = 0;
  std::uint32_t done_count_ = 0;
  std::function<void()> on_complete_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace gmt::sim
