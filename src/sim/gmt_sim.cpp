#include "sim/gmt_sim.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace gmt::sim {

SimGmtRuntime::SimGmtRuntime(Engine* engine, std::uint32_t num_nodes,
                             const SimGmtConfig& config,
                             const GmtCosts& costs)
    : engine_(engine),
      num_nodes_(num_nodes),
      config_(config),
      costs_(costs),
      link_free_(static_cast<std::size_t>(num_nodes) * num_nodes, 0) {
  GMT_CHECK(num_nodes >= 1);
  obs::init_from_env();  // arm the tracer on GMT_TRACE=1
  nodes_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    auto node = std::make_unique<NodeSim>();
    node->workers.resize(config.num_workers);
    node->helper_free.assign(config.num_helpers, 0);
    node->agg.resize(num_nodes);
    if (obs::trace_on()) {
      // Virtual-time tracks: timestamps are simulated ns, not rebased to
      // the wall-clock trace epoch.
      obs::Tracer& tracer = obs::Tracer::global();
      const std::string prefix = "sim/node" + std::to_string(n);
      node->task_track = tracer.new_track(prefix + "/tasks", true);
      node->net_track = tracer.new_track(prefix + "/net", true);
    }
    nodes_.push_back(std::move(node));
  }
}

SimGmtRuntime::~SimGmtRuntime() {
  // Normal completion leaves no live tasks or itbs; reclaim leftovers from
  // aborted simulations.
  for (auto& node : nodes_) {
    for (ItbSim* itb : node->itbs) delete itb;
    for (auto& worker : node->workers)
      for (TaskRec* task : worker.runnable) delete task;
  }
  // Standalone simulations (benches, sim_bfs_gmt runs) have no cluster to
  // flush the trace at shutdown; honour GMT_TRACE_FILE here instead.
  if (obs::trace_on())
    if (const char* path = std::getenv("GMT_TRACE_FILE"))
      obs::Tracer::global().dump(path);
}

void SimGmtRuntime::parfor(std::uint64_t iterations, std::uint64_t chunk,
                           TaskFactory factory,
                           std::function<void()> on_complete,
                           std::uint32_t origin) {
  GMT_CHECK(iterations > 0);
  auto rec = std::make_unique<ParforRec>();
  rec->on_complete = std::move(on_complete);
  ParforRec* parfor_rec = rec.get();
  parfors_.push_back(std::move(rec));

  auto shared_factory = std::make_shared<TaskFactory>(std::move(factory));
  const std::uint64_t per = (iterations + num_nodes_ - 1) / num_nodes_;
  std::uint64_t begin = 0;
  for (std::uint32_t n = 0; n < num_nodes_ && begin < iterations; ++n) {
    const std::uint64_t count = std::min(per, iterations - begin);
    ++parfor_rec->pending_nodes;

    auto* itb = new ItbSim;
    itb->begin = begin;
    itb->next = begin;
    itb->end = begin + count;
    itb->origin = origin;
    itb->parfor = parfor_rec;
    itb->factory = shared_factory;
    itb->chunk = chunk;
    if (itb->chunk == 0) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(config_.num_workers) * 16;
      itb->chunk = std::max<std::uint64_t>(1, count / std::max<std::uint64_t>(
                                                          target, 1));
    }

    if (n == origin) {
      node(n).itbs.push_back(itb);
      wake_node(n);
    } else {
      Entry spawn;
      spawn.kind = Entry::Kind::kSpawn;
      spawn.wire_bytes = config_.cmd_header_bytes + 64;  // args buffer
      spawn.itb = itb;
      spawn.src = origin;
      append(origin, n, spawn);
    }
    begin += count;
  }
}

void SimGmtRuntime::parfor_single(std::uint32_t target, std::uint64_t iterations,
                                  std::uint64_t chunk, TaskFactory factory,
                                  std::function<void()> on_complete) {
  GMT_CHECK(iterations > 0 && target < num_nodes_);
  auto rec = std::make_unique<ParforRec>();
  rec->on_complete = std::move(on_complete);
  rec->pending_nodes = 1;
  ParforRec* parfor_rec = rec.get();
  parfors_.push_back(std::move(rec));

  auto* itb = new ItbSim;
  itb->begin = 0;
  itb->next = 0;
  itb->end = iterations;
  itb->origin = target;
  itb->parfor = parfor_rec;
  itb->factory = std::make_shared<TaskFactory>(std::move(factory));
  itb->chunk = chunk ? chunk : 1;
  node(target).itbs.push_back(itb);
  wake_node(target);
}

void SimGmtRuntime::wake_worker(std::uint32_t n, std::uint32_t w) {
  WorkerSim& worker = node(n).workers[w];
  if (worker.tick_scheduled) return;
  worker.tick_scheduled = true;
  engine_->schedule_in(0, [this, n, w] { worker_tick(n, w); });
}

void SimGmtRuntime::wake_node(std::uint32_t n) {
  NodeSim& target = node(n);
  for (std::uint32_t w = 0; w < target.workers.size(); ++w) {
    const WorkerSim& worker = target.workers[w];
    if (!worker.runnable.empty() ||
        (!target.itbs.empty() &&
         worker.live_tasks < config_.max_tasks_per_worker))
      wake_worker(n, w);
  }
}

void SimGmtRuntime::worker_tick(std::uint32_t n, std::uint32_t w) {
  NodeSim& home = node(n);
  WorkerSim& worker = home.workers[w];
  // tick_scheduled stays true while this tick runs: wake-ups triggered by
  // the tick's own task completions must not spawn a parallel zero-delay
  // tick chain (which would let the worker do unbounded work per instant).
  GMT_DCHECK(worker.tick_scheduled);

  double cycles = 0;
  bool progressed = false;

  if (!worker.runnable.empty()) {
    TaskRec* task = worker.runnable.front();
    worker.runnable.pop_front();
    cycles += costs_.ctx_switch_cycles + costs_.sched_cycles;
    cycles += run_task(task);
    progressed = true;
  } else if (!home.itbs.empty() &&
             worker.live_tasks < config_.max_tasks_per_worker) {
    ItbSim* itb = home.itbs.front();
    const std::uint64_t begin = itb->next;
    const std::uint64_t end = std::min(begin + itb->chunk, itb->end);
    itb->next = end;
    if (itb->next >= itb->end) home.itbs.pop_front();

    auto* task = new TaskRec;
    task->logic = (*itb->factory)(n, begin, end);
    task->node = n;
    task->worker = w;
    task->itb = itb;
    task->iterations = end - begin;
    if (home.task_track != nullptr) task->born_vns = vns(engine_->now());
    worker.runnable.push_back(task);
    ++worker.live_tasks;
    cycles += costs_.task_spawn_cycles;
    progressed = true;
  }

  if (progressed) {
    engine_->schedule_in(costs_.cycles_to_s(cycles),
                         [this, n, w] { worker_tick(n, w); });
  } else {
    // Sleep; replies or spawns wake the worker, and partial aggregation
    // buffers drain through their timeout events.
    worker.tick_scheduled = false;
  }
}

double SimGmtRuntime::run_task(TaskRec* task) {
  double cycles = 0;
  SimOp op;
  for (;;) {
    op = SimOp{};
    const SimTask::Status status = task->logic->next(&op);
    if (status == SimTask::Status::kDone) {
      task->finished = true;
      if (task->outstanding == 0) finish_task(task);
      // else: zombie until the last reply credits it.
      break;
    }
    cycles += op.work_cycles + costs_.cmd_gen_cycles;
    ++commands_;
    if (op.dst == task->node) {
      // Local fast path: executed in place, no traffic, no suspension.
      cycles += costs_.cmd_exec_cycles;
      continue;
    }
    Entry request;
    request.kind = Entry::Kind::kRequest;
    request.wire_bytes = config_.cmd_header_bytes + op.request_payload;
    request.task = task;
    request.reply_payload = op.reply_payload;
    request.src = task->node;
    ++task->outstanding;
    append(task->node, op.dst, request);
    if (op.blocking) {
      task->blocked = true;
      break;
    }
  }
  return cycles;
}

void SimGmtRuntime::finish_task(TaskRec* task) {
  NodeSim& home = node(task->node);
  WorkerSim& worker = home.workers[task->worker];
  GMT_DCHECK(worker.live_tasks > 0);
  --worker.live_tasks;
  if (home.task_track != nullptr) {
    const std::uint64_t now = vns(engine_->now());
    home.task_track->complete("task.lifetime", task->born_vns,
                              now - task->born_vns, task->iterations);
  }
  ItbSim* itb = task->itb;
  const std::uint64_t n = task->iterations;
  const std::uint32_t at_node = task->node;
  delete task;
  if (itb) complete_iterations(itb, n, at_node);
  // Freed capacity may unblock itb adoption.
  wake_node(at_node);
}

void SimGmtRuntime::credit_reply(TaskRec* task) {
  GMT_DCHECK(task->outstanding > 0);
  --task->outstanding;
  if (task->outstanding > 0) return;
  if (task->finished) {
    finish_task(task);
  } else if (task->blocked) {
    task->blocked = false;
    node(task->node).workers[task->worker].runnable.push_back(task);
    wake_worker(task->node, task->worker);
  }
}

void SimGmtRuntime::complete_iterations(ItbSim* itb, std::uint64_t n,
                                        std::uint32_t at_node) {
  itb->completed += n;
  if (itb->completed < itb->end - itb->begin) return;
  ParforRec* parfor_rec = itb->parfor;
  const std::uint32_t origin = itb->origin;
  delete itb;
  if (origin == at_node) {
    if (--parfor_rec->pending_nodes == 0)
      engine_->schedule_in(0, parfor_rec->on_complete);
  } else {
    Entry done;
    done.kind = Entry::Kind::kDone;
    done.wire_bytes = config_.cmd_header_bytes;
    done.parfor = parfor_rec;
    done.src = at_node;
    append(at_node, origin, done);
  }
}

namespace {
// Mirror of the runtime's AIMD clamps (kAdaptiveQueueMin/MaxNs).
constexpr double kAdaptiveMinS = 5e-6;
constexpr double kAdaptiveMaxS = 1e-3;

double clamp_adaptive_s(double t) {
  return t < kAdaptiveMinS ? kAdaptiveMinS
                           : (t > kAdaptiveMaxS ? kAdaptiveMaxS : t);
}
}  // namespace

double SimGmtRuntime::flush_deadline_s(AggQueue& queue) const {
  if (!config_.adaptive_flush) return config_.agg_timeout_s;
  // Mirror of the runtime's AIMD controller: halve when a deadline flush
  // finds the queue mostly empty, grow 5/4 when the size trigger fires.
  if (queue.deadline_s < 0)
    queue.deadline_s = clamp_adaptive_s(config_.agg_timeout_s);
  return queue.deadline_s;
}

void SimGmtRuntime::append(std::uint32_t src, std::uint32_t dst,
                           Entry entry) {
  AggQueue& queue = node(src).agg[dst];
  queue.entries.push_back(entry);
  queue.bytes += entry.wire_bytes;

  if (!config_.aggregation_enabled) {
    flush(src, dst);  // every command is its own message
    return;
  }
  if (queue.bytes >= config_.buffer_size) {
    if (config_.adaptive_flush) {
      // AIMD grow: the buffer filled before the deadline fired, so the
      // deadline costs no latency — lengthen it for sparser phases.
      const double t = flush_deadline_s(queue);
      queue.deadline_s = clamp_adaptive_s(t + t / 4);
    }
    flush(src, dst);
  } else if (queue.entries.size() == 1) {
    // First command since the last send: arm the flush deadline.
    const std::uint64_t generation = queue.generation;
    engine_->schedule_in(flush_deadline_s(queue),
                         [this, src, dst, generation] {
      AggQueue& q = node(src).agg[dst];
      if (q.generation != generation || q.entries.empty()) return;
      if (config_.adaptive_flush && q.bytes < config_.buffer_size / 4) {
        // AIMD shrink: the deadline fired mostly empty — waiting bought
        // almost no coalescing, so it was pure latency.
        q.deadline_s = clamp_adaptive_s(flush_deadline_s(q) / 2);
      }
      flush(src, dst);
    });
  }
}

void SimGmtRuntime::flush(std::uint32_t src, std::uint32_t dst) {
  AggQueue& queue = node(src).agg[dst];
  if (queue.entries.empty()) return;
  std::vector<Entry> entries = std::move(queue.entries);
  const std::uint64_t wire = queue.bytes;
  queue.entries.clear();
  queue.bytes = 0;
  ++queue.generation;

  // Aggregation copy, then link serialisation, then the wire.
  const double copy_s = costs_.cycles_to_s(
      costs_.aggregate_cycles +
      costs_.copy_cycles_per_byte * static_cast<double>(wire));
  SimTime& link = link_free_[static_cast<std::size_t>(src) * num_nodes_ + dst];
  const SimTime depart = std::max(link, engine_->now() + copy_s);
  const double occupancy = costs_.net.occupancy_s(wire);
  link = depart + occupancy;
  const SimTime arrive = depart + occupancy + costs_.net.latency_s;

  if (node(src).net_track != nullptr)
    node(src).net_track->complete("buffer.flush", vns(engine_->now()),
                                  vns(depart + occupancy) - vns(engine_->now()),
                                  wire);

  ++messages_;
  bytes_ += wire;
  engine_->schedule(arrive,
                    [this, src, dst, wire,
                     moved = std::make_shared<std::vector<Entry>>(
                         std::move(entries))]() mutable {
                      deliver(src, dst, std::move(*moved), wire);
                    });
}

void SimGmtRuntime::deliver(std::uint32_t src, std::uint32_t dst,
                            std::vector<Entry> entries,
                            std::uint64_t wire_bytes) {
  (void)src;
  (void)wire_bytes;
  // Earliest-free helper services the whole buffer.
  NodeSim& home = node(dst);
  auto helper = std::min_element(home.helper_free.begin(),
                                 home.helper_free.end());
  const SimTime start = std::max(*helper, engine_->now());
  const double service_s = costs_.cycles_to_s(
      costs_.cmd_exec_cycles * static_cast<double>(entries.size()));
  *helper = start + service_s;
  engine_->schedule(start + service_s,
                    [this, dst,
                     moved = std::make_shared<std::vector<Entry>>(
                         std::move(entries))] {
                      execute_entries(dst, *moved);
                    });
}

void SimGmtRuntime::execute_entries(std::uint32_t dst,
                                    const std::vector<Entry>& entries) {
  for (const Entry& entry : entries) {
    switch (entry.kind) {
      case Entry::Kind::kRequest: {
        Entry reply;
        reply.kind = Entry::Kind::kReply;
        reply.wire_bytes = config_.cmd_header_bytes + entry.reply_payload;
        reply.task = entry.task;
        reply.src = dst;
        append(dst, entry.src, reply);
        break;
      }
      case Entry::Kind::kReply:
        credit_reply(entry.task);
        break;
      case Entry::Kind::kSpawn:
        node(dst).itbs.push_back(entry.itb);
        wake_node(dst);
        break;
      case Entry::Kind::kDone:
        if (--entry.parfor->pending_nodes == 0)
          engine_->schedule_in(0, entry.parfor->on_complete);
        break;
    }
  }
}

}  // namespace gmt::sim
