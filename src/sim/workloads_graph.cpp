#include "sim/workloads_graph.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/gmt_sim.hpp"
#include "sim/scripted_task.hpp"

namespace gmt::sim {

namespace {

constexpr std::uint64_t kNoParent = ~0ULL;
constexpr std::uint64_t kNeighborChunk = 512;

// Host-side BFS state shared by all simulated tasks (single-threaded DES).
struct BfsState {
  const graph::Csr* csr;
  std::uint32_t nodes;
  std::vector<std::uint64_t> parents;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> next;
  std::uint64_t edges = 0;
  std::uint64_t visited = 0;

  std::uint32_t owner_offsets(std::uint64_t v) const {
    return owner_of_word(v, csr->vertices + 1, nodes);
  }
  std::uint32_t owner_adjacency(std::uint64_t e) const {
    return owner_of_word(e, std::max<std::uint64_t>(csr->edges(), 1), nodes);
  }
  std::uint32_t owner_vertex_word(std::uint64_t v) const {
    return owner_of_word(v, csr->vertices, nodes);
  }
};

// Scripts one frontier vertex: offsets read, chunked neighbour reads, a CAS
// per neighbour, and counter/frontier updates for the winners — the same
// operations the real kernel in src/kernels/bfs_gmt.cpp issues.
void script_bfs_vertex(BfsState& state, std::uint64_t frontier_index,
                       std::vector<SimOp>* ops) {
  const graph::Csr& csr = *state.csr;
  const std::uint64_t v = state.frontier[frontier_index];

  // Frontier read + edge_range (two offset words in one get).
  ops->push_back(SimOp{state.owner_vertex_word(frontier_index), 0, 8, 60,
                       true});
  ops->push_back(SimOp{state.owner_offsets(v), 0, 16, 60, true});

  const std::uint64_t begin = csr.offsets[v];
  const std::uint64_t end = csr.offsets[v + 1];
  if (end > begin) {
    // Edge-counter atomic (counters array lives on node 0).
    ops->push_back(SimOp{0, 8, 8, 30, true});
  }
  for (std::uint64_t e = begin; e < end; e += kNeighborChunk) {
    const std::uint64_t n = std::min<std::uint64_t>(kNeighborChunk, end - e);
    ops->push_back(SimOp{state.owner_adjacency(e), 0,
                         static_cast<std::uint32_t>(8 * n), 80, true});
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t u = csr.adjacency[e + k];
      ++state.edges;
      // Parent CAS (blocking, returns old value).
      ops->push_back(SimOp{state.owner_vertex_word(u), 8, 8, 40, true});
      if (state.parents[u] == kNoParent) {
        state.parents[u] = v;
        ++state.visited;
        const std::uint64_t slot = state.next.size();
        state.next.push_back(u);
        // Slot reservation on node 0, then the non-blocking frontier put.
        ops->push_back(SimOp{0, 8, 8, 30, true});
        ops->push_back(SimOp{state.owner_vertex_word(slot), 8, 0, 30, false});
      }
    }
  }
}

}  // namespace

GraphKernelResult sim_bfs_gmt(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t root, const SimGmtConfig& config,
                              const GmtCosts& costs, std::uint64_t chunk) {
  Engine engine;
  SimGmtRuntime runtime(&engine, nodes, config, costs);

  BfsState state;
  state.csr = &csr;
  state.nodes = nodes;
  state.parents.assign(csr.vertices, kNoParent);
  state.parents[root] = root;
  state.frontier.push_back(root);
  state.visited = 1;

  GraphKernelResult result;
  double finish = 0;

  // Level-synchronous driver: each level is one cluster-wide parfor; the
  // completion callback starts the next level.
  auto run_level = std::make_shared<std::function<void()>>();
  *run_level = [&, run_level] {
    if (state.frontier.empty()) {
      finish = engine.now();
      return;
    }
    ++result.levels;
    state.next.clear();
    runtime.parfor(
        state.frontier.size(), chunk,
        [&](std::uint32_t, std::uint64_t begin, std::uint64_t end)
            -> std::unique_ptr<SimTask> {
          return std::make_unique<ScriptedTask>(
              begin, end, [&](std::uint64_t i, std::vector<SimOp>* ops) {
                script_bfs_vertex(state, i, ops);
              });
        },
        [&, run_level] {
          std::swap(state.frontier, state.next);
          (*run_level)();
        });
  };
  (*run_level)();
  engine.run();
  // engine.run() returned: no callback can fire again. Clear the functor
  // to break its shared_ptr self-capture cycle.
  *run_level = nullptr;

  result.edges_traversed = state.edges;
  result.visited = state.visited;
  result.seconds = finish;
  result.messages = runtime.network_messages();
  result.wire_bytes = runtime.network_bytes();
  return result;
}

// -------------------------------------------------------------- UPC BFS --

namespace {

// One UPC thread's BFS: processes frontier slice id, id+T, ... with one
// blocking shared read per word and a remote CAS per neighbour; barrier
// between levels. Shared host state mirrors the real bfs_upc kernel.
struct UpcBfsShared {
  const graph::Csr* csr;
  std::uint32_t threads;
  std::vector<std::uint64_t> parents;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> next;
  std::uint64_t edges = 0;
  std::uint64_t visited = 1;
  std::uint64_t levels = 0;
  std::uint32_t swap_epoch = 0;  // guards the once-per-level swap

  std::uint32_t owner_word(std::uint64_t w, std::uint64_t total) const {
    return owner_of_word(w, total, threads);
  }
};

class UpcBfsLogic final : public RankLogic {
 public:
  UpcBfsLogic(UpcBfsShared* shared, std::uint32_t id)
      : shared_(shared), id_(id) {}

  Status next(SpmdOp* op) override {
    if (!pending_.empty()) {
      *op = pending_.front();
      pending_.erase(pending_.begin());
      return Status::kOp;
    }
    if (at_barrier_) {
      at_barrier_ = false;
      // First thread resuming in the new epoch performs the level swap.
      if (shared_->swap_epoch == epoch_) {
        ++shared_->swap_epoch;
        std::swap(shared_->frontier, shared_->next);
        shared_->next.clear();
        if (!shared_->frontier.empty()) ++shared_->levels;
      }
      ++epoch_;
      cursor_ = id_;
      if (shared_->frontier.empty()) return Status::kDone;
    }
    // Script the next owned frontier vertex.
    while (cursor_ < shared_->frontier.size()) {
      const std::uint64_t i = cursor_;
      cursor_ += shared_->threads;
      script_vertex(i);
      if (!pending_.empty()) {
        *op = pending_.front();
        pending_.erase(pending_.begin());
        return Status::kOp;
      }
    }
    at_barrier_ = true;
    return Status::kBarrier;
  }

 private:
  void script_vertex(std::uint64_t i) {
    const graph::Csr& csr = *shared_->csr;
    const std::uint64_t v = shared_->frontier[i];
    const auto word_op = [&](std::uint32_t dst, double work) {
      SpmdOp op;
      op.dst = dst;
      op.request_bytes = 16;
      op.reply_bytes = 16;
      op.work_cycles = work;
      op.service_cycles = 250;
      if (dst != id_) pending_.push_back(op);
    };
    // Frontier word + two offset words.
    word_op(shared_->owner_word(i, csr.vertices), 60);
    word_op(shared_->owner_word(v, csr.vertices + 1), 40);
    word_op(shared_->owner_word(v + 1, csr.vertices + 1), 40);
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      const std::uint64_t u = csr.adjacency[e];
      ++shared_->edges;
      // Adjacency word, then the parent CAS.
      word_op(shared_->owner_word(
                  e, std::max<std::uint64_t>(csr.edges(), 1)),
              40);
      word_op(shared_->owner_word(u, csr.vertices), 50);
      if (shared_->parents[u] == kNoParent) {
        shared_->parents[u] = v;
        ++shared_->visited;
        shared_->next.push_back(u);
        // Counter add (thread 0) + next-frontier put.
        word_op(0, 30);
        word_op(shared_->owner_word(shared_->next.size() - 1, csr.vertices),
                30);
      }
    }
  }

  UpcBfsShared* shared_;
  std::uint32_t id_;
  std::uint64_t cursor_ = 0;
  std::uint32_t epoch_ = 0;
  bool at_barrier_ = false;
  std::vector<SpmdOp> pending_;
};

}  // namespace

GraphKernelResult sim_bfs_upc(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t root, const SpmdCosts& costs) {
  Engine engine;
  SimSpmd spmd(&engine, nodes, costs);

  UpcBfsShared shared;
  shared.csr = &csr;
  shared.threads = nodes;
  shared.parents.assign(csr.vertices, kNoParent);
  shared.parents[root] = root;
  shared.next.push_back(root);  // swapped in by the first epoch
  shared.swap_epoch = 0;

  GraphKernelResult result;
  double finish = 0;
  // Every thread starts at the barrier state so the first swap installs
  // the root frontier.
  spmd.start(
      [&](std::uint32_t rank) -> std::unique_ptr<RankLogic> {
        auto logic = std::make_unique<UpcBfsLogic>(&shared, rank);
        return logic;
      },
      [&] { finish = engine.now(); });
  engine.run();

  result.edges_traversed = shared.edges;
  result.visited = shared.visited;
  result.levels = shared.levels;
  result.seconds = finish;
  result.messages = spmd.network_messages();
  result.wire_bytes = spmd.network_bytes();
  return result;
}

// -------------------------------------------------------------- XMT BFS --

GraphKernelResult sim_bfs_xmt(const graph::Csr& csr,
                              std::uint32_t processors, std::uint64_t root,
                              const XmtModel& model) {
  // Host BFS to obtain per-level edge counts, then the analytic model.
  GraphKernelResult result;
  std::vector<std::uint64_t> parents(csr.vertices, kNoParent);
  std::vector<std::uint64_t> frontier{root}, next;
  parents[root] = root;
  result.visited = 1;

  double seconds = 0;
  while (!frontier.empty()) {
    ++result.levels;
    std::uint64_t level_edges = 0;
    next.clear();
    for (std::uint64_t v : frontier) {
      for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
        const std::uint64_t u = csr.adjacency[e];
        ++level_edges;
        if (parents[u] == kNoParent) {
          parents[u] = v;
          next.push_back(u);
          ++result.visited;
        }
      }
    }
    result.edges_traversed += level_edges;
    // Saturated rate scaled down when a level lacks parallelism.
    const double per_proc = static_cast<double>(level_edges) / processors;
    const double utilisation =
        std::min(1.0, per_proc / model.min_parallel_edges);
    const double rate =
        model.edge_rate_per_proc * processors * std::max(utilisation, 1e-3);
    seconds += static_cast<double>(level_edges) / rate +
               model.level_overhead_s;
    frontier.swap(next);
  }
  result.seconds = seconds;
  return result;
}

// -------------------------------------------------------------- GRW GMT --

GraphKernelResult sim_grw_gmt(const graph::Csr& csr, std::uint32_t nodes,
                              std::uint64_t walkers, std::uint64_t length,
                              const SimGmtConfig& config,
                              const GmtCosts& costs, std::uint64_t seed) {
  Engine engine;
  SimGmtRuntime runtime(&engine, nodes, config, costs);

  std::uint64_t edges = 0;
  GraphKernelResult result;
  double finish = 0;

  runtime.parfor(
      walkers, 1,
      [&](std::uint32_t, std::uint64_t begin, std::uint64_t end)
          -> std::unique_ptr<SimTask> {
        // One walker per task; iterations within the task are its steps.
        auto rng = std::make_shared<Xoshiro256>(
            seed ^ (begin * 0x9e3779b97f4a7c15ULL));
        auto current =
            std::make_shared<std::uint64_t>(begin % csr.vertices);
        return std::make_unique<ScriptedTask>(
            0, length * (end - begin),
            [&, rng, current](std::uint64_t, std::vector<SimOp>* ops) {
              const std::uint64_t v = *current;
              ops->push_back(SimOp{
                  owner_of_word(v, csr.vertices + 1, nodes), 0, 16, 60,
                  true});
              const std::uint64_t deg = csr.degree(v);
              if (deg == 0) {
                *current = rng->below(csr.vertices);
                return;
              }
              const std::uint64_t e = csr.offsets[v] + rng->below(deg);
              ops->push_back(SimOp{
                  owner_of_word(e, std::max<std::uint64_t>(csr.edges(), 1),
                                nodes),
                  0, 8, 60, true});
              *current = csr.adjacency[e];
              ++edges;
            });
      },
      [&] { finish = engine.now(); });
  engine.run();

  result.edges_traversed = edges;
  result.seconds = finish;
  result.messages = runtime.network_messages();
  result.wire_bytes = runtime.network_bytes();
  return result;
}

// -------------------------------------------------------------- GRW MPI --

GraphKernelResult sim_grw_mpi_batched(const graph::Csr& csr,
                                      std::uint32_t ranks,
                                      std::uint64_t walkers,
                                      std::uint64_t length,
                                      const SpmdCosts& costs,
                                      std::uint64_t seed) {
  // Semantic execution of the round-based delegation algorithm with
  // alpha-beta costs per round: local advance time, batched all-to-all
  // exchange, allreduce for termination.
  struct Walk {
    std::uint64_t current;
    std::uint64_t remaining;
    std::uint64_t rng;
  };
  const std::uint64_t vertices = csr.vertices;
  const std::uint64_t block = (vertices + ranks - 1) / ranks;
  const auto owner = [&](std::uint64_t v) {
    return static_cast<std::uint32_t>(v / block);
  };

  std::vector<std::vector<Walk>> active(ranks);
  for (std::uint64_t w = 0; w < walkers; ++w) {
    const std::uint64_t start = w % vertices;
    active[owner(start)].push_back(
        Walk{start, length, seed ^ (w * 0x9e3779b97f4a7c15ULL)});
  }

  GraphKernelResult result;
  constexpr double kStepCycles = 800;      // degree lookup + pick + move
                                             // (cache-missing random access)
  constexpr double kPackCycles = 120;      // serialise/deserialise one walk
  constexpr double kSenderSwS = 1.2e-6;    // MPI library cost per message
  constexpr std::uint32_t kWalkBytes = 24;

  std::uint64_t completed = 0;
  double seconds = 0;
  while (completed < walkers) {
    ++result.levels;  // rounds
    double max_local_s = 0;
    double max_send_s = 0;
    std::size_t recv_walks = 0;
    std::vector<std::vector<Walk>> inbox(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      std::uint64_t steps = 0;
      std::vector<std::vector<Walk>> outbox(ranks);
      for (Walk walk : active[r]) {
        while (walk.remaining > 0 && owner(walk.current) == r) {
          const std::uint64_t deg = csr.degree(walk.current);
          if (deg == 0) {
            walk.current = splitmix64(walk.rng) % vertices;
            ++steps;
            continue;
          }
          walk.current =
              csr.adjacency[csr.offsets[walk.current] +
                            splitmix64(walk.rng) % deg];
          --walk.remaining;
          ++result.edges_traversed;
          ++steps;
        }
        if (walk.remaining == 0)
          ++completed;
        else
          outbox[owner(walk.current)].push_back(walk);
      }
      double send_s = 0;
      for (std::uint32_t d = 0; d < ranks; ++d) {
        if (d == r || outbox[d].empty()) continue;
        const std::uint64_t bytes = outbox[d].size() * kWalkBytes;
        send_s += kSenderSwS + costs.net.occupancy_s(bytes) +
                  costs.cycles_to_s(kPackCycles *
                                    static_cast<double>(outbox[d].size()));
        ++result.messages;
        result.wire_bytes += bytes;
        for (const Walk& walk : outbox[d]) inbox[d].push_back(walk);
      }
      max_local_s = std::max(
          max_local_s,
          costs.cycles_to_s(kStepCycles * static_cast<double>(steps)));
      max_send_s = std::max(max_send_s, send_s);
      recv_walks = std::max(recv_walks, inbox[r].size());
    }
    active = std::move(inbox);
    // Round time: slowest rank's local phase, slowest sender's exchange,
    // one latency for delivery, and a log-depth allreduce.
    const double allreduce_s =
        2.0 * std::ceil(std::log2(std::max<std::uint32_t>(ranks, 2))) *
        (costs.net.alpha_s + costs.net.latency_s);
    seconds += max_local_s + max_send_s +
               costs.cycles_to_s(kPackCycles *
                                 static_cast<double>(recv_walks)) +
               costs.net.latency_s + allreduce_s;
  }
  result.seconds = seconds;
  return result;
}


GraphKernelResult sim_grw_mpi(const graph::Csr& csr, std::uint32_t ranks,
                              std::uint64_t walkers, std::uint64_t length,
                              const SpmdCosts& costs, std::uint64_t seed) {
  // Fire-and-forget per-walk delegation: a rank advances one walk at a
  // time; when the walk leaves the local partition the rank sends the
  // 24-byte walk state to the owner and moves on. Every send and every
  // receive pays the MPI library envelope on the rank's single thread —
  // the fine-grained message cost the paper contrasts with GMT.
  struct Walk {
    std::uint64_t current;
    std::uint64_t remaining;
    std::uint64_t rng;
  };
  struct RankState {
    std::deque<Walk> pending;
    SimTime busy_until = 0;
    bool step_scheduled = false;
  };

  constexpr double kStepCycles = 800;
  constexpr double kSendEnvelopeCycles = 2500;  // MPI_Send software cost
  constexpr double kRecvEnvelopeCycles = 2500;  // matching + copy-out
  constexpr std::uint32_t kWalkBytes = 24;

  const std::uint64_t vertices = csr.vertices;
  const std::uint64_t block = (vertices + ranks - 1) / ranks;
  const auto owner = [&](std::uint64_t v) {
    return static_cast<std::uint32_t>(v / block);
  };

  Engine engine;
  std::vector<RankState> states(ranks);
  std::vector<SimTime> link_free(static_cast<std::size_t>(ranks) * ranks, 0);

  GraphKernelResult result;
  std::uint64_t completed = 0;
  double finish = 0;

  for (std::uint64_t w = 0; w < walkers; ++w) {
    const std::uint64_t start = w % vertices;
    states[owner(start)].pending.push_back(
        Walk{start, length, seed ^ (w * 0x9e3779b97f4a7c15ULL)});
  }

  // One event per processed walk segment on each rank's serial timeline.
  std::function<void(std::uint32_t)> pump = [&](std::uint32_t r) {
    RankState& state = states[r];
    state.step_scheduled = false;
    if (state.pending.empty()) return;

    Walk walk = state.pending.front();
    state.pending.pop_front();
    const SimTime start = std::max(state.busy_until, engine.now());
    double cycles = 0;
    while (walk.remaining > 0 && owner(walk.current) == r) {
      const std::uint64_t deg = csr.degree(walk.current);
      cycles += kStepCycles;
      if (deg == 0) {
        walk.current = splitmix64(walk.rng) % vertices;
        continue;
      }
      walk.current = csr.adjacency[csr.offsets[walk.current] +
                                   splitmix64(walk.rng) % deg];
      --walk.remaining;
      ++result.edges_traversed;
    }
    SimTime done = start + costs.cycles_to_s(cycles);
    if (walk.remaining == 0) {
      ++completed;
      if (completed == walkers) finish = done;
    } else {
      // Delegate: envelope + NIC interaction on this rank (a blocking
      // MPI_Send holds the caller through the alpha occupancy), wire,
      // envelope + NIC at the owner.
      done += costs.cycles_to_s(kSendEnvelopeCycles) + costs.net.alpha_s;
      const std::uint32_t dst = owner(walk.current);
      SimTime& link = link_free[static_cast<std::size_t>(r) * ranks + dst];
      const SimTime depart = std::max(link, done);
      const double occupancy = costs.net.occupancy_s(kWalkBytes);
      link = depart + occupancy;
      ++result.messages;
      result.wire_bytes += kWalkBytes;
      engine.schedule(
          depart + occupancy + costs.net.latency_s, [&, dst, walk] {
            RankState& peer = states[dst];
            peer.busy_until = std::max(peer.busy_until, engine.now()) +
                              costs.cycles_to_s(kRecvEnvelopeCycles) +
                              costs.net.alpha_s;
            peer.pending.push_back(walk);
            if (!peer.step_scheduled) {
              peer.step_scheduled = true;
              engine.schedule(peer.busy_until, [&, dst] { pump(dst); });
            }
          });
    }
    state.busy_until = done;
    if (!state.pending.empty()) {
      state.step_scheduled = true;
      engine.schedule(done, [&, r] { pump(r); });
    }
  };

  for (std::uint32_t r = 0; r < ranks; ++r)
    if (!states[r].pending.empty()) {
      states[r].step_scheduled = true;
      engine.schedule_in(0, [&, r] { pump(r); });
    }
  engine.run();

  result.seconds = finish;
  return result;
}
}  // namespace gmt::sim
