// Simulated Concurrent Hash Map Access (paper Figs. 10 and 11): the GMT
// tasking version and the owner-compute MPI version over the same
// deterministic string workload.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/spmd_sim.hpp"

namespace gmt::sim {

struct ChmaSimResult {
  std::uint64_t accesses = 0;
  double seconds = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;

  double maccesses_per_s() const {
    return seconds > 0 ? static_cast<double>(accesses) / seconds / 1e6 : 0;
  }
};

struct ChmaSimParams {
  std::uint32_t nodes = 2;
  std::uint64_t map_capacity = 1 << 20;
  std::uint64_t pool_size = 1 << 16;
  std::uint64_t populate = 1 << 15;
  std::uint64_t tasks = 1024;   // W
  std::uint64_t steps = 128;    // L
  std::uint64_t seed = 42;
};

// GMT version: W tasks, each step a probe sequence of fine-grained gets
// plus CAS/put on insert, against a block-distributed slot array.
ChmaSimResult sim_chma_gmt(const ChmaSimParams& params,
                           const SimGmtConfig& config, const GmtCosts& costs);

// MPI version: ranks own hash-partitioned sub-tables; every remote step is
// a blocking request/reply against the (serial, contended) owner.
ChmaSimResult sim_chma_mpi(const ChmaSimParams& params,
                           const SpmdCosts& costs);

}  // namespace gmt::sim
