// MPI-like SPMD baseline runtime.
//
// The paper's hand-coded comparators are plain MPI programs: one rank per
// node, blocking tagged sends/receives, no user-level tasking and no
// runtime-level aggregation (any batching is written into the application,
// as the paper's GRW delegation code does). This module reproduces that
// programming model over the same in-process fabric the GMT runtime uses,
// so kernel comparisons isolate the runtime rather than the transport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/inproc_transport.hpp"

namespace gmt::baselines {

class MpiWorld;

// One rank's communication context. All calls happen on the rank's thread.
class MpiRank {
 public:
  std::uint32_t rank() const { return rank_; }
  std::uint32_t size() const;

  // Blocking tagged send (spins on transport backpressure).
  void send(std::uint32_t dst, std::uint64_t tag, const void* data,
            std::size_t size);

  // Non-blocking receive of any message; false when none available.
  bool try_recv(std::uint32_t* src, std::uint64_t* tag,
                std::vector<std::uint8_t>* payload);

  // Blocking receive of the first message whose tag matches; messages with
  // other tags are queued for later receives in arrival order.
  void recv_tag(std::uint64_t tag, std::uint32_t* src,
                std::vector<std::uint8_t>* payload);

  // Blocking receive that lets the caller service other traffic: every
  // non-matching message is handed to `service` immediately (the classic
  // "poll while waiting for your reply" MPI idiom that avoids request/
  // request deadlock).
  void recv_tag_serving(
      std::uint64_t tag, std::uint32_t* src,
      std::vector<std::uint8_t>* payload,
      const std::function<void(std::uint32_t, std::uint64_t,
                               std::vector<std::uint8_t>&)>& service);

  // Dissemination barrier over point-to-point messages.
  void barrier();

  // Sum-reduction of one u64 to every rank (allreduce).
  std::uint64_t allreduce_sum(std::uint64_t value);

 private:
  friend class MpiWorld;
  MpiRank(MpiWorld* world, std::uint32_t rank, net::Transport* transport)
      : world_(world), rank_(rank), transport_(transport) {}

  bool pump();  // moves one transport message into the unmatched queue

  struct Unmatched {
    std::uint32_t src;
    std::uint64_t tag;
    std::vector<std::uint8_t> payload;
  };

  MpiWorld* world_;
  std::uint32_t rank_;
  net::Transport* transport_;
  std::deque<Unmatched> unmatched_;
  std::uint64_t barrier_seq_ = 0;
};

// Reserved tags (top of the tag space) used by barrier/allreduce.
inline constexpr std::uint64_t kTagBarrier = ~0ULL - 16;
inline constexpr std::uint64_t kTagReduce = ~0ULL - 17;

class MpiWorld {
 public:
  explicit MpiWorld(std::uint32_t ranks,
                    net::NetworkModel model = net::NetworkModel::instant());

  std::uint32_t size() const { return ranks_; }
  net::InprocFabric& fabric() { return fabric_; }

  // Runs fn on every rank concurrently (one OS thread each) and joins.
  void run(const std::function<void(MpiRank&)>& fn);

 private:
  const std::uint32_t ranks_;
  net::InprocFabric fabric_;
};

}  // namespace gmt::baselines
