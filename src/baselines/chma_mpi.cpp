#include "baselines/chma_mpi.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "baselines/mpi_like.hpp"
#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "hash/string_pool.hpp"

namespace gmt::baselines {

namespace {

constexpr std::uint64_t kTagStep = 200;    // request: lookup-and-maybe-have
constexpr std::uint64_t kTagInsert = 201;  // request: insert
constexpr std::uint64_t kTagReply = 202;
constexpr std::uint64_t kTagDone = 203;
constexpr std::uint64_t kTagStop = 204;

// Per-rank sub-table: local open addressing with the same 32-byte-slot
// geometry as the distributed map (tag + key).
class SubTable {
 public:
  explicit SubTable(std::uint64_t slots) : tags_(slots, 0), keys_(slots) {}

  bool contains(const hash::StringKey& key) const {
    const std::uint64_t h = hash::hash_key(key);
    const std::uint64_t n = tags_.size();
    for (std::uint64_t probe = 0; probe < n; ++probe) {
      const std::uint64_t i = (h + probe) % n;
      if (tags_[i] == 0) return false;
      if (tags_[i] == h && keys_[i] == key) return true;
    }
    return false;
  }

  bool insert(const hash::StringKey& key) {
    const std::uint64_t h = hash::hash_key(key);
    const std::uint64_t n = tags_.size();
    for (std::uint64_t probe = 0; probe < n; ++probe) {
      const std::uint64_t i = (h + probe) % n;
      if (tags_[i] == 0) {
        tags_[i] = h;
        keys_[i] = key;
        return true;
      }
      if (tags_[i] == h && keys_[i] == key) return true;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> tags_;
  std::vector<hash::StringKey> keys_;
};

}  // namespace

ChmaMpiResult chma_mpi(std::uint32_t ranks, std::uint64_t map_capacity,
                       std::uint64_t pool_size, std::uint64_t populate,
                       std::uint64_t streams, std::uint64_t steps,
                       std::uint64_t seed, net::NetworkModel model) {
  ChmaMpiResult result;
  result.streams = streams;
  result.steps_per_stream = steps;

  const std::vector<hash::StringKey> pool =
      hash::generate_pool(pool_size, seed);
  std::atomic<std::uint64_t> total_accesses{0};

  MpiWorld world(ranks, model);
  StopWatch watch;
  world.run([&](MpiRank& rank) {
    SubTable table((map_capacity + ranks - 1) / ranks);
    const auto owner = [&](const hash::StringKey& key) {
      return static_cast<std::uint32_t>(hash::hash_key(key) % ranks);
    };

    // Phase 1: populate — every rank inserts the pool keys it owns.
    for (std::uint64_t i = 0; i < populate && i < pool.size(); ++i)
      if (owner(pool[i]) == rank.rank()) table.insert(pool[i]);
    rank.barrier();

    // Request servicing shared by every wait below. Rank 0 may see DONE
    // notifications from early-finishing ranks while still in its own
    // access phase; they are counted here and credited in the drain phase.
    std::uint32_t done = 1;
    const auto service = [&](std::uint32_t src, std::uint64_t tag,
                             std::vector<std::uint8_t>& payload) {
      if (tag == kTagDone) {
        ++done;
        return;
      }
      hash::StringKey key;
      GMT_CHECK(payload.size() == sizeof(key));
      std::memcpy(&key, payload.data(), sizeof(key));
      if (tag == kTagStep) {
        const std::uint8_t present = table.contains(key) ? 1 : 0;
        rank.send(src, kTagReply, &present, 1);
      } else if (tag == kTagInsert) {
        table.insert(key);
        const std::uint8_t ok = 1;
        rank.send(src, kTagReply, &ok, 1);
      }
    };

    // Phase 2: this rank's share of the W streams, run sequentially (an
    // MPI process is single-threaded in the paper's baseline).
    std::uint64_t my_accesses = 0;
    for (std::uint64_t s = rank.rank(); s < streams; s += ranks) {
      Xoshiro256 rng(seed ^ (s * 0xbf58476d1ce4e5b9ULL));
      hash::StringKey current = pool[rng.below(pool.size())];
      for (std::uint64_t step = 0; step < steps; ++step) {
        // Lookup at the owner.
        bool present;
        if (owner(current) == rank.rank()) {
          present = table.contains(current);
        } else {
          rank.send(owner(current), kTagStep, &current, sizeof(current));
          std::uint32_t src;
          std::vector<std::uint8_t> payload;
          rank.recv_tag_serving(kTagReply, &src, &payload, service);
          present = payload[0] != 0;
        }
        if (present) {
          current.reverse();
          if (owner(current) == rank.rank()) {
            table.insert(current);
          } else {
            rank.send(owner(current), kTagInsert, &current, sizeof(current));
            std::uint32_t src;
            std::vector<std::uint8_t> payload;
            rank.recv_tag_serving(kTagReply, &src, &payload, service);
          }
        } else {
          current = pool[rng.below(pool.size())];
        }
        ++my_accesses;
      }
    }

    // Phase 3: drain — keep serving until every rank reported done.
    if (rank.rank() == 0) {
      Backoff backoff;
      while (done < ranks) {
        std::uint32_t src;
        std::uint64_t tag;
        std::vector<std::uint8_t> payload;
        if (!rank.try_recv(&src, &tag, &payload)) {
          backoff.pause();
          continue;
        }
        backoff.reset();
        if (tag == kTagDone)
          ++done;
        else
          service(src, tag, payload);
      }
      const std::uint8_t stop = 1;
      for (std::uint32_t r = 1; r < ranks; ++r)
        rank.send(r, kTagStop, &stop, 1);
    } else {
      const std::uint8_t flag = 1;
      rank.send(0, kTagDone, &flag, 1);
      Backoff backoff;
      for (;;) {
        std::uint32_t src;
        std::uint64_t tag;
        std::vector<std::uint8_t> payload;
        if (!rank.try_recv(&src, &tag, &payload)) {
          backoff.pause();
          continue;
        }
        backoff.reset();
        if (tag == kTagStop) break;
        service(src, tag, payload);
      }
    }
    total_accesses.fetch_add(my_accesses, std::memory_order_relaxed);
  });
  result.seconds = watch.elapsed_s();
  result.accesses = total_accesses.load();
  return result;
}

}  // namespace gmt::baselines
