#include "baselines/upc_like.hpp"

#include <cstring>
#include <thread>

#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "runtime/node.hpp"  // for the shared atomic appliers

namespace gmt::baselines {

namespace {

// Wire format: [u8 op][u32 array][u64 offset][u32 size][fields...]
enum UpcOp : std::uint8_t {
  kGetReq = 1,
  kPutReq,
  kCasReq,
  kAddReq,
  kReply,
  kBarrier,
};

struct WireHeader {
  std::uint8_t op;
  std::uint32_t array;
  std::uint64_t offset;
  std::uint32_t size;
  std::uint64_t a;
  std::uint64_t b;
};

std::vector<std::uint8_t> pack(const WireHeader& h, const void* payload,
                               std::size_t payload_size) {
  std::vector<std::uint8_t> wire(sizeof(WireHeader) + payload_size);
  std::memcpy(wire.data(), &h, sizeof(h));
  if (payload_size)
    std::memcpy(wire.data() + sizeof(h), payload, payload_size);
  return wire;
}

WireHeader unpack(const std::vector<std::uint8_t>& wire,
                  const std::uint8_t** payload) {
  GMT_CHECK(wire.size() >= sizeof(WireHeader));
  WireHeader h;
  std::memcpy(&h, wire.data(), sizeof(h));
  *payload = wire.data() + sizeof(h);
  return h;
}

std::uint64_t apply_add(std::uint8_t* addr, std::uint64_t operand) {
  auto* p = reinterpret_cast<std::uint64_t*>(addr);
  return std::atomic_ref<std::uint64_t>(*p).fetch_add(
      operand, std::memory_order_acq_rel);
}

std::uint64_t apply_cas(std::uint8_t* addr, std::uint64_t expected,
                        std::uint64_t desired) {
  auto* p = reinterpret_cast<std::uint64_t*>(addr);
  std::uint64_t want = expected;
  std::atomic_ref<std::uint64_t>(*p).compare_exchange_strong(
      want, desired, std::memory_order_acq_rel);
  return want;
}

}  // namespace

std::uint32_t UpcThread::size() const { return world_->size(); }

void UpcThread::send_wire(std::uint32_t dst, std::vector<std::uint8_t> wire) {
  Backoff backoff;
  while (!transport_->send(dst, wire)) {
    // Keep serving while blocked so peers can drain.
    progress();
    backoff.pause();
  }
}

bool UpcThread::progress() {
  net::InMessage msg;
  if (!transport_->try_recv(&msg)) return false;
  const std::uint8_t* payload = nullptr;
  const WireHeader h = unpack(msg.payload, &payload);
  switch (h.op) {
    case kReply:
      replies_.push_back(std::move(msg.payload));
      break;
    case kBarrier:
      barrier_tokens_.push_back(Incoming{msg.src, std::move(msg.payload)});
      break;
    default:
      serve(msg.src, msg.payload);
      break;
  }
  return true;
}

void UpcThread::serve(std::uint32_t src,
                      const std::vector<std::uint8_t>& wire) {
  const std::uint8_t* payload = nullptr;
  const WireHeader h = unpack(wire, &payload);
  GMT_CHECK(h.array < arrays_.size());
  SharedBlock& block = arrays_[h.array];
  std::uint8_t* addr = block.storage.data() + h.offset;

  WireHeader reply{};
  reply.op = kReply;
  switch (h.op) {
    case kGetReq:
      send_wire(src, pack(reply, addr, h.size));
      break;
    case kPutReq:
      std::memcpy(addr, payload, h.size);
      send_wire(src, pack(reply, nullptr, 0));
      break;
    case kCasReq:
      reply.a = apply_cas(addr, h.a, h.b);
      send_wire(src, pack(reply, nullptr, 0));
      break;
    case kAddReq:
      reply.a = apply_add(addr, h.a);
      send_wire(src, pack(reply, nullptr, 0));
      break;
    default:
      GMT_CHECK_MSG(false, "bad UPC request");
  }
}

std::vector<std::uint8_t> UpcThread::wait_reply() {
  Backoff backoff;
  while (replies_.empty()) {
    if (progress())
      backoff.reset();
    else
      backoff.pause();
  }
  std::vector<std::uint8_t> reply = std::move(replies_.front());
  replies_.pop_front();
  return reply;
}

upc_array UpcThread::alloc_shared(std::uint64_t bytes) {
  SharedBlock block;
  block.total = bytes;
  // Blocks are rounded to 8 bytes so naturally-aligned words never
  // straddle an ownership boundary (required for remote atomics).
  block.block = ((bytes + size() - 1) / size() + 7) & ~std::uint64_t{7};
  const std::uint64_t begin = static_cast<std::uint64_t>(id_) * block.block;
  const std::uint64_t end =
      begin + block.block < bytes ? begin + block.block : bytes;
  block.storage.assign(end > begin ? end - begin : 0, 0);
  arrays_.push_back(std::move(block));
  const auto handle = static_cast<upc_array>(arrays_.size() - 1);
  barrier();  // collective: usable only when every thread allocated
  return handle;
}

std::uint64_t UpcThread::block_size(upc_array array) const {
  return arrays_[array].block;
}

std::uint32_t UpcThread::owner_of(upc_array array,
                                  std::uint64_t offset) const {
  return static_cast<std::uint32_t>(offset / arrays_[array].block);
}

std::uint8_t* UpcThread::local_block(upc_array array) {
  return arrays_[array].storage.data();
}

std::uint64_t UpcThread::local_block_bytes(upc_array array) const {
  return arrays_[array].storage.size();
}

void UpcThread::sget(upc_array array, std::uint64_t offset, void* out,
                     std::uint32_t size) {
  SharedBlock& block = arrays_[array];
  const std::uint32_t owner = owner_of(array, offset);
  const std::uint64_t local = offset - owner * block.block;
  GMT_DCHECK(local + size <= block.block);
  if (owner == id_) {
    std::memcpy(out, block.storage.data() + local, size);
    return;
  }
  WireHeader h{};
  h.op = kGetReq;
  h.array = array;
  h.offset = local;
  h.size = size;
  send_wire(owner, pack(h, nullptr, 0));
  const std::vector<std::uint8_t> reply = wait_reply();
  std::memcpy(out, reply.data() + sizeof(WireHeader), size);
}

void UpcThread::sput(upc_array array, std::uint64_t offset, const void* data,
                     std::uint32_t size) {
  SharedBlock& block = arrays_[array];
  const std::uint32_t owner = owner_of(array, offset);
  const std::uint64_t local = offset - owner * block.block;
  GMT_DCHECK(local + size <= block.block);
  if (owner == id_) {
    std::memcpy(block.storage.data() + local, data, size);
    return;
  }
  WireHeader h{};
  h.op = kPutReq;
  h.array = array;
  h.offset = local;
  h.size = size;
  send_wire(owner, pack(h, data, size));
  wait_reply();
}

std::uint64_t UpcThread::scas(upc_array array, std::uint64_t offset,
                              std::uint64_t expected, std::uint64_t desired) {
  SharedBlock& block = arrays_[array];
  const std::uint32_t owner = owner_of(array, offset);
  const std::uint64_t local = offset - owner * block.block;
  if (owner == id_)
    return apply_cas(block.storage.data() + local, expected, desired);
  WireHeader h{};
  h.op = kCasReq;
  h.array = array;
  h.offset = local;
  h.a = expected;
  h.b = desired;
  send_wire(owner, pack(h, nullptr, 0));
  const std::vector<std::uint8_t> reply = wait_reply();
  const std::uint8_t* payload = nullptr;
  return unpack(reply, &payload).a;
}

std::uint64_t UpcThread::sadd(upc_array array, std::uint64_t offset,
                              std::uint64_t value) {
  SharedBlock& block = arrays_[array];
  const std::uint32_t owner = owner_of(array, offset);
  const std::uint64_t local = offset - owner * block.block;
  if (owner == id_)
    return apply_add(block.storage.data() + local, value);
  WireHeader h{};
  h.op = kAddReq;
  h.array = array;
  h.offset = local;
  h.a = value;
  send_wire(owner, pack(h, nullptr, 0));
  const std::vector<std::uint8_t> reply = wait_reply();
  const std::uint8_t* payload = nullptr;
  return unpack(reply, &payload).a;
}

void UpcThread::barrier() {
  // Dissemination barrier; tokens carry (sequence, round) so a token from
  // a *later* barrier arriving early (collectives are same-order on every
  // thread) cannot satisfy the current one.
  const std::uint32_t n = size();
  const std::uint64_t seq = barrier_seq_++;
  for (std::uint32_t round = 1; round < n; round <<= 1) {
    WireHeader h{};
    h.op = kBarrier;
    h.a = (seq << 16) | round;
    send_wire((id_ + round) % n, pack(h, nullptr, 0));
    // Wait for this round's token, serving requests meanwhile.
    Backoff backoff;
    for (bool got = false; !got;) {
      for (auto it = barrier_tokens_.begin(); it != barrier_tokens_.end();
           ++it) {
        const std::uint8_t* payload = nullptr;
        if (unpack(it->payload, &payload).a == ((seq << 16) | round)) {
          barrier_tokens_.erase(it);
          got = true;
          break;
        }
      }
      if (got) break;
      if (progress())
        backoff.reset();
      else
        backoff.pause();
    }
  }
}

std::uint64_t UpcThread::allreduce_sum(std::uint64_t value) {
  // Gather to thread 0, broadcast back — correct for any thread count
  // (a dissemination exchange of partial sums double-counts off powers of
  // two). Tokens travel on the barrier channel with distinct markers, and
  // every wait keeps serving remote-access requests.
  constexpr std::uint64_t kGatherMark = 0x8000000000000000ULL;
  constexpr std::uint64_t kBcastMark = 0x4000000000000000ULL;
  const std::uint32_t n = size();

  const auto wait_token = [&](std::uint64_t mark) -> std::uint64_t {
    Backoff backoff;
    for (;;) {
      for (auto it = barrier_tokens_.begin(); it != barrier_tokens_.end();
           ++it) {
        const std::uint8_t* payload = nullptr;
        const WireHeader t = unpack(it->payload, &payload);
        if (t.a == mark) {
          const std::uint64_t v = t.b;
          barrier_tokens_.erase(it);
          return v;
        }
      }
      if (progress())
        backoff.reset();
      else
        backoff.pause();
    }
  };

  if (id_ == 0) {
    std::uint64_t total = value;
    for (std::uint32_t i = 1; i < n; ++i) total += wait_token(kGatherMark);
    for (std::uint32_t i = 1; i < n; ++i) {
      WireHeader h{};
      h.op = kBarrier;
      h.a = kBcastMark;
      h.b = total;
      send_wire(i, pack(h, nullptr, 0));
    }
    return total;
  }
  WireHeader h{};
  h.op = kBarrier;
  h.a = kGatherMark;
  h.b = value;
  send_wire(0, pack(h, nullptr, 0));
  return wait_token(kBcastMark);
}

UpcWorld::UpcWorld(std::uint32_t threads, net::NetworkModel model)
    : threads_(threads), fabric_(threads, model) {}

void UpcWorld::run(const std::function<void(UpcThread&)>& fn) {
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (std::uint32_t t = 0; t < threads_; ++t) {
    workers.emplace_back([this, t, &fn] {
      UpcThread thread(this, t, fabric_.endpoint(t));
      fn(thread);
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace gmt::baselines
