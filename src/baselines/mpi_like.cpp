#include "baselines/mpi_like.hpp"

#include <cstring>
#include <thread>

#include "common/assert.hpp"
#include "common/backoff.hpp"

namespace gmt::baselines {

std::uint32_t MpiRank::size() const { return world_->size(); }

void MpiRank::send(std::uint32_t dst, std::uint64_t tag, const void* data,
                   std::size_t size) {
  std::vector<std::uint8_t> wire(sizeof(tag) + size);
  std::memcpy(wire.data(), &tag, sizeof(tag));
  if (size) std::memcpy(wire.data() + sizeof(tag), data, size);
  Backoff backoff;
  while (!transport_->send(dst, wire)) backoff.pause();
}

bool MpiRank::pump() {
  net::InMessage msg;
  if (!transport_->try_recv(&msg)) return false;
  GMT_CHECK(msg.payload.size() >= sizeof(std::uint64_t));
  Unmatched u;
  u.src = msg.src;
  std::memcpy(&u.tag, msg.payload.data(), sizeof(u.tag));
  u.payload.assign(msg.payload.begin() + sizeof(u.tag), msg.payload.end());
  unmatched_.push_back(std::move(u));
  return true;
}

bool MpiRank::try_recv(std::uint32_t* src, std::uint64_t* tag,
                       std::vector<std::uint8_t>* payload) {
  if (unmatched_.empty() && !pump()) return false;
  Unmatched u = std::move(unmatched_.front());
  unmatched_.pop_front();
  *src = u.src;
  *tag = u.tag;
  *payload = std::move(u.payload);
  return true;
}

void MpiRank::recv_tag(std::uint64_t tag, std::uint32_t* src,
                       std::vector<std::uint8_t>* payload) {
  Backoff backoff;
  for (;;) {
    for (auto it = unmatched_.begin(); it != unmatched_.end(); ++it) {
      if (it->tag == tag) {
        *src = it->src;
        *payload = std::move(it->payload);
        unmatched_.erase(it);
        return;
      }
    }
    if (pump())
      backoff.reset();
    else
      backoff.pause();
  }
}

void MpiRank::recv_tag_serving(
    std::uint64_t tag, std::uint32_t* src, std::vector<std::uint8_t>* payload,
    const std::function<void(std::uint32_t, std::uint64_t,
                             std::vector<std::uint8_t>&)>& service) {
  Backoff backoff;
  for (;;) {
    while (!unmatched_.empty()) {
      Unmatched u = std::move(unmatched_.front());
      unmatched_.pop_front();
      if (u.tag == tag) {
        *src = u.src;
        *payload = std::move(u.payload);
        return;
      }
      service(u.src, u.tag, u.payload);
    }
    if (pump())
      backoff.reset();
    else
      backoff.pause();
  }
}

void MpiRank::barrier() {
  // Dissemination barrier: log2(N) rounds of paired send/recv. Tokens
  // carry (barrier sequence, round) — barriers are collective and called
  // in the same order on every rank, so the sequence disambiguates tokens
  // that arrive early from a *later* barrier. Matching scans the
  // unmatched queue directly and pumps the transport when nothing fits
  // (a recv_tag loop that requeues mismatches would keep re-matching the
  // stale token and never pump).
  const std::uint32_t n = size();
  const std::uint64_t seq = barrier_seq_++;
  Backoff backoff;
  for (std::uint32_t round = 1; round < n; round <<= 1) {
    const std::uint64_t token = (seq << 16) | round;
    send((rank_ + round) % n, kTagBarrier, &token, sizeof(token));
    for (bool got = false; !got;) {
      for (auto it = unmatched_.begin(); it != unmatched_.end(); ++it) {
        if (it->tag != kTagBarrier) continue;
        std::uint64_t seen;
        std::memcpy(&seen, it->payload.data(), sizeof(seen));
        if (seen == token) {
          unmatched_.erase(it);
          got = true;
          break;
        }
      }
      if (got) break;
      if (pump())
        backoff.reset();
      else
        backoff.pause();
    }
  }
}

std::uint64_t MpiRank::allreduce_sum(std::uint64_t value) {
  // Gather to rank 0, broadcast back. Small n; simplicity over latency.
  std::uint32_t src;
  std::vector<std::uint8_t> payload;
  if (rank_ == 0) {
    std::uint64_t total = value;
    for (std::uint32_t i = 1; i < size(); ++i) {
      recv_tag(kTagReduce, &src, &payload);
      std::uint64_t v;
      std::memcpy(&v, payload.data(), sizeof(v));
      total += v;
    }
    for (std::uint32_t i = 1; i < size(); ++i)
      send(i, kTagReduce + 1, &total, sizeof(total));
    return total;
  }
  send(0, kTagReduce, &value, sizeof(value));
  recv_tag(kTagReduce + 1, &src, &payload);
  std::uint64_t total;
  std::memcpy(&total, payload.data(), sizeof(total));
  return total;
}

MpiWorld::MpiWorld(std::uint32_t ranks, net::NetworkModel model)
    : ranks_(ranks), fabric_(ranks, model) {}

void MpiWorld::run(const std::function<void(MpiRank&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(ranks_);
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, r, &fn] {
      MpiRank rank(this, r, fabric_.endpoint(r));
      fn(rank);
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace gmt::baselines
