// Breadth-First Search, hand-coded MPI style.
//
// The classic distributed-memory BFS a cluster programmer writes without a
// PGAS runtime: the graph is partitioned by vertex range; each level every
// rank expands its owned slice of the frontier and sends each discovered
// remote neighbour to its owner in per-destination batches; owners
// deduplicate against their local visited set. Level-synchronous with an
// allreduce on the next frontier size. This completes the baseline matrix
// (the paper shows UPC/XMT for BFS; the MPI discipline is the one its GRW
// and CHMA baselines use).
#pragma once

#include <cstdint>

#include "graph/generator.hpp"
#include "net/network_model.hpp"

namespace gmt::baselines {

struct BfsMpiResult {
  std::uint64_t visited = 0;
  std::uint64_t edges_traversed = 0;
  std::uint64_t levels = 0;
  double seconds = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

BfsMpiResult bfs_mpi(const graph::Csr& csr, std::uint32_t ranks,
                     std::uint64_t root,
                     net::NetworkModel model = net::NetworkModel::instant());

}  // namespace gmt::baselines
