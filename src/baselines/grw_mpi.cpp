#include "baselines/grw_mpi.hpp"

#include <atomic>
#include <cstring>
#include <deque>

#include "baselines/mpi_like.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace gmt::baselines {

namespace {

constexpr std::uint64_t kTagWalks = 100;

struct WalkState {
  std::uint64_t current;
  std::uint64_t remaining;
  std::uint64_t rng_state;
};

}  // namespace

GrwMpiResult grw_mpi(const graph::Csr& csr, std::uint32_t ranks,
                     std::uint64_t walkers, std::uint64_t length,
                     std::uint64_t seed, net::NetworkModel model) {
  GrwMpiResult result;
  result.walkers = walkers;
  result.steps_per_walker = length;

  const std::uint64_t vertices = csr.vertices;
  const std::uint64_t block = (vertices + ranks - 1) / ranks;
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> total_rounds{0};

  MpiWorld world(ranks, model);
  StopWatch watch;
  world.run([&](MpiRank& rank) {
    const auto owner = [&](std::uint64_t v) {
      return static_cast<std::uint32_t>(v / block);
    };

    // Walks whose start vertex this rank owns.
    std::deque<WalkState> active;
    for (std::uint64_t w = 0; w < walkers; ++w) {
      const std::uint64_t start = w % vertices;
      if (owner(start) == rank.rank())
        active.push_back(
            WalkState{start, length, seed ^ (w * 0x9e3779b97f4a7c15ULL)});
    }

    std::uint64_t my_edges = 0;
    std::uint64_t my_completed = 0;
    std::uint64_t rounds = 0;
    std::uint64_t done_total = 0;

    while (done_total < walkers) {
      ++rounds;
      // Advance every local walk as far as it stays local; buffer the rest
      // per destination (the paper's end-of-round batching).
      std::vector<std::vector<WalkState>> outbox(ranks);
      while (!active.empty()) {
        WalkState walk = active.front();
        active.pop_front();
        while (walk.remaining > 0 && owner(walk.current) == rank.rank()) {
          const std::uint64_t deg = csr.degree(walk.current);
          if (deg == 0) {
            walk.current = splitmix64(walk.rng_state) % vertices;
            continue;  // teleport; not an edge traversal
          }
          const std::uint64_t pick = splitmix64(walk.rng_state) % deg;
          walk.current = csr.adjacency[csr.offsets[walk.current] + pick];
          --walk.remaining;
          ++my_edges;
        }
        if (walk.remaining == 0)
          ++my_completed;
        else
          outbox[owner(walk.current)].push_back(walk);
      }

      // Synchronous all-to-all of delegation batches (possibly empty, so
      // every rank knows exactly what to expect).
      for (std::uint32_t r = 0; r < ranks; ++r) {
        if (r == rank.rank()) continue;
        rank.send(r, kTagWalks, outbox[r].data(),
                  outbox[r].size() * sizeof(WalkState));
      }
      for (std::uint32_t r = 0; r + 1 < ranks; ++r) {
        std::uint32_t src;
        std::vector<std::uint8_t> payload;
        rank.recv_tag(kTagWalks, &src, &payload);
        const std::size_t count = payload.size() / sizeof(WalkState);
        for (std::size_t i = 0; i < count; ++i) {
          WalkState walk;
          std::memcpy(&walk, payload.data() + i * sizeof(WalkState),
                      sizeof(WalkState));
          active.push_back(walk);
        }
      }

      done_total = rank.allreduce_sum(my_completed) -
                   /* completed are re-counted every round */ 0;
      // Each rank reports its cumulative count; the sum is the global
      // cumulative count, so the loop exits on all ranks together.
    }

    total_edges.fetch_add(my_edges, std::memory_order_relaxed);
    if (rank.rank() == 0)
      total_rounds.store(rounds, std::memory_order_relaxed);
  });
  result.seconds = watch.elapsed_s();
  result.edges_traversed = total_edges.load();
  result.rounds = total_rounds.load();
  return result;
}

}  // namespace gmt::baselines
