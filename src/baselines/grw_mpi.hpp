// Graph Random Walk, hand-coded MPI style (paper §V-C).
//
// The comparator the paper describes: the graph is partitioned by vertex
// range across ranks; a rank advances each walk while it stays local and
// *delegates* it to the owner of the next vertex otherwise. Delegations are
// buffered per destination and exchanged only at the end of each round —
// the application-level aggregation the paper's MPI code implements by
// hand. Rounds are synchronous: an all-to-all batch exchange plus an
// allreduce of the completed-walk count.
#pragma once

#include <cstdint>

#include "graph/generator.hpp"
#include "net/network_model.hpp"

namespace gmt::baselines {

struct GrwMpiResult {
  std::uint64_t walkers = 0;
  std::uint64_t steps_per_walker = 0;
  std::uint64_t edges_traversed = 0;
  std::uint64_t rounds = 0;
  double seconds = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

// Runs the MPI-style GRW over `ranks` SPMD processes on the shared host
// CSR (each rank only touches its own vertex range, as a real MPI code
// would its local slice).
GrwMpiResult grw_mpi(const graph::Csr& csr, std::uint32_t ranks,
                     std::uint64_t walkers, std::uint64_t length,
                     std::uint64_t seed = 42,
                     net::NetworkModel model = net::NetworkModel::instant());

}  // namespace gmt::baselines
