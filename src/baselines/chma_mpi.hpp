// Concurrent Hash Map Access, hand-coded MPI style (paper §V-D).
//
// Owner-compute: each rank owns a sub-table selected by key hash; only the
// owner checks and inserts. A rank whose current string hashes elsewhere
// sends it to the owner and blocks on the reply — "a process cannot proceed
// with a new string until it has finished manipulating the previous one" —
// servicing other ranks' requests while it waits. This is exactly the
// fine-grained, frequent-small-message pattern the paper contrasts with
// GMT's aggregated accesses.
#pragma once

#include <cstdint>

#include "net/network_model.hpp"

namespace gmt::baselines {

struct ChmaMpiResult {
  std::uint64_t streams = 0;         // concurrent streams (W equivalent)
  std::uint64_t steps_per_stream = 0;
  std::uint64_t accesses = 0;
  double seconds = 0;

  double maccesses_per_s() const {
    return seconds > 0 ? static_cast<double>(accesses) / seconds / 1e6 : 0;
  }
};

// Runs the owner-compute CHMA: `ranks` SPMD processes, a hash map of
// `map_capacity` total slots partitioned by hash, a deterministic pool of
// `pool_size` strings with the first `populate` pre-inserted, and
// `streams`x`steps` accesses split across ranks.
ChmaMpiResult chma_mpi(std::uint32_t ranks, std::uint64_t map_capacity,
                       std::uint64_t pool_size, std::uint64_t populate,
                       std::uint64_t streams, std::uint64_t steps,
                       std::uint64_t seed = 42,
                       net::NetworkModel model = net::NetworkModel::instant());

}  // namespace gmt::baselines
