#include "baselines/bfs_mpi.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "baselines/mpi_like.hpp"
#include "common/time.hpp"

namespace gmt::baselines {

namespace {
constexpr std::uint64_t kTagFrontier = 300;
}

BfsMpiResult bfs_mpi(const graph::Csr& csr, std::uint32_t ranks,
                     std::uint64_t root, net::NetworkModel model) {
  BfsMpiResult result;
  const std::uint64_t vertices = csr.vertices;
  const std::uint64_t block = (vertices + ranks - 1) / ranks;
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> total_visited{0};
  std::atomic<std::uint64_t> total_levels{0};

  MpiWorld world(ranks, model);
  StopWatch watch;
  world.run([&](MpiRank& rank) {
    const auto owner = [&](std::uint64_t v) {
      return static_cast<std::uint32_t>(v / block);
    };
    const std::uint64_t begin = rank.rank() * block;
    const std::uint64_t end =
        begin + block < vertices ? begin + block : vertices;

    std::vector<std::uint8_t> visited(end > begin ? end - begin : 0, 0);
    std::vector<std::uint64_t> frontier;  // owned vertices, current level
    std::uint64_t my_edges = 0;
    std::uint64_t my_visited = 0;
    std::uint64_t levels = 0;

    if (owner(root) == rank.rank()) {
      visited[root - begin] = 1;
      frontier.push_back(root);
      ++my_visited;
    }

    std::uint64_t global_frontier = 1;
    while (global_frontier > 0) {
      ++levels;
      // Expand owned frontier; batch discovered vertices per owner.
      std::vector<std::vector<std::uint64_t>> outbox(ranks);
      std::vector<std::uint64_t> next;
      for (const std::uint64_t v : frontier) {
        for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
          const std::uint64_t u = csr.adjacency[e];
          ++my_edges;
          if (owner(u) == rank.rank()) {
            if (!visited[u - begin]) {
              visited[u - begin] = 1;
              next.push_back(u);
              ++my_visited;
            }
          } else {
            outbox[owner(u)].push_back(u);
          }
        }
      }
      // All-to-all exchange (possibly empty, so receipt counts are known).
      for (std::uint32_t r = 0; r < ranks; ++r) {
        if (r == rank.rank()) continue;
        rank.send(r, kTagFrontier, outbox[r].data(), outbox[r].size() * 8);
      }
      for (std::uint32_t r = 0; r + 1 < ranks; ++r) {
        std::uint32_t src;
        std::vector<std::uint8_t> payload;
        rank.recv_tag(kTagFrontier, &src, &payload);
        const std::size_t count = payload.size() / 8;
        for (std::size_t i = 0; i < count; ++i) {
          std::uint64_t u;
          std::memcpy(&u, payload.data() + i * 8, 8);
          if (!visited[u - begin]) {
            visited[u - begin] = 1;
            next.push_back(u);
            ++my_visited;
          }
        }
      }
      frontier.swap(next);
      global_frontier = rank.allreduce_sum(frontier.size());
    }

    total_edges.fetch_add(my_edges);
    total_visited.fetch_add(my_visited);
    if (rank.rank() == 0) total_levels.store(levels);
  });
  result.seconds = watch.elapsed_s();
  result.edges_traversed = total_edges.load();
  result.visited = total_visited.load();
  // The loop runs one extra round with an empty global frontier check
  // folded in; levels counts expansion rounds that had work.
  result.levels = total_levels.load();
  return result;
}

}  // namespace gmt::baselines
