// Breadth-First Search, UPC style (paper §V-B).
//
// The queue-based BFS the paper runs under UPC: level-synchronous, the
// frontier split statically across SPMD threads, every neighbour id fetched
// with a blocking single-word shared read and every parent claimed with a
// blocking remote CAS. No tasking, no aggregation — each remote access is a
// full round trip stalling the issuing thread, which is precisely why this
// version does not scale in the paper (Fig. 8).
//
// An optional software cache of the exploration map models the paper's
// hand-optimised UPC variant (visited bits cached locally to skip repeat
// CAS attempts).
#pragma once

#include <cstdint>

#include "graph/generator.hpp"
#include "net/network_model.hpp"

namespace gmt::baselines {

struct BfsUpcResult {
  std::uint64_t visited = 0;
  std::uint64_t edges_traversed = 0;
  std::uint64_t levels = 0;
  double seconds = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

BfsUpcResult bfs_upc(const graph::Csr& csr, std::uint32_t threads,
                     std::uint64_t root, bool use_visited_cache = false,
                     net::NetworkModel model = net::NetworkModel::instant());

}  // namespace gmt::baselines
