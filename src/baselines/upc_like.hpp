// UPC-like PGAS baseline runtime.
//
// Models what the paper compares against (§V-B): an SPMD PGAS language on a
// commodity cluster — shared arrays with block distribution and *blocking*
// fine-grained remote accesses, one thread per node, no user-level tasking
// and no aggregation. Each UPC thread both executes application code and
// services remote-access requests while it waits (the runtime progress a
// GASNet-backed UPC provides). What makes this model slow on irregular
// codes is visible directly in the API: every remote dereference is a full
// request/reply round trip that stalls the only thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/inproc_transport.hpp"

namespace gmt::baselines {

class UpcWorld;

// Identifier of a collectively allocated shared array.
using upc_array = std::uint32_t;

class UpcThread {
 public:
  std::uint32_t id() const { return id_; }
  std::uint32_t size() const;

  // Collective allocation: every thread must call in the same order with
  // the same size. Block-distributed; includes a barrier.
  upc_array alloc_shared(std::uint64_t bytes);

  // Blocking element access (services incoming requests while waiting).
  void sget(upc_array array, std::uint64_t offset, void* out,
            std::uint32_t size);
  void sput(upc_array array, std::uint64_t offset, const void* data,
            std::uint32_t size);
  std::uint64_t scas(upc_array array, std::uint64_t offset,
                     std::uint64_t expected, std::uint64_t desired);
  std::uint64_t sadd(upc_array array, std::uint64_t offset,
                     std::uint64_t value);

  // Collective operations (service requests while waiting).
  void barrier();
  std::uint64_t allreduce_sum(std::uint64_t value);

  // Direct pointer to the local block of an array (the "private pointer to
  // shared local data" optimisation every real UPC code uses).
  std::uint8_t* local_block(upc_array array);
  std::uint64_t block_size(upc_array array) const;
  // Bytes actually stored on this thread (the last block may be short).
  std::uint64_t local_block_bytes(upc_array array) const;
  std::uint32_t owner_of(upc_array array, std::uint64_t offset) const;

 private:
  friend class UpcWorld;
  UpcThread(UpcWorld* world, std::uint32_t id, net::Transport* transport)
      : world_(world), id_(id), transport_(transport) {}

  struct SharedBlock {
    std::uint64_t total = 0;
    std::uint64_t block = 0;
    std::vector<std::uint8_t> storage;  // this thread's partition
  };

  struct Incoming {
    std::uint32_t src;
    std::vector<std::uint8_t> payload;
  };

  // Pumps the transport, services any requests, returns true on progress.
  bool progress();
  void serve(std::uint32_t src, const std::vector<std::uint8_t>& wire);
  // Waits for a reply (op echo) while serving; returns its payload.
  std::vector<std::uint8_t> wait_reply();
  // Takes the wire buffer by value (call sites pass freshly packed
  // rvalues); the transport consumes it on success, so backpressure
  // retries reuse the same allocation.
  void send_wire(std::uint32_t dst, std::vector<std::uint8_t> wire);

  UpcWorld* world_;
  std::uint32_t id_;
  net::Transport* transport_;
  std::vector<SharedBlock> arrays_;
  std::deque<std::vector<std::uint8_t>> replies_;
  std::deque<Incoming> barrier_tokens_;
  std::uint64_t barrier_seq_ = 0;
};

class UpcWorld {
 public:
  explicit UpcWorld(std::uint32_t threads,
                    net::NetworkModel model = net::NetworkModel::instant());

  std::uint32_t size() const { return threads_; }
  net::InprocFabric& fabric() { return fabric_; }

  void run(const std::function<void(UpcThread&)>& fn);

 private:
  const std::uint32_t threads_;
  net::InprocFabric fabric_;
};

}  // namespace gmt::baselines
