#include "baselines/bfs_upc.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "baselines/upc_like.hpp"
#include "common/time.hpp"

namespace gmt::baselines {

namespace {
constexpr std::uint64_t kNoParent = ~0ULL;
}

BfsUpcResult bfs_upc(const graph::Csr& csr, std::uint32_t threads,
                     std::uint64_t root, bool use_visited_cache,
                     net::NetworkModel model) {
  BfsUpcResult result;
  const std::uint64_t vertices = csr.vertices;
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> out_visited{0};
  std::atomic<std::uint64_t> out_levels{0};

  UpcWorld world(threads, model);
  StopWatch watch;
  world.run([&](UpcThread& upc) {
    // Collective allocations (same order on every thread).
    const upc_array offsets = upc.alloc_shared((vertices + 1) * 8);
    const upc_array adjacency =
        upc.alloc_shared((csr.edges() ? csr.edges() : 1) * 8);
    const upc_array parents = upc.alloc_shared(vertices * 8);
    const upc_array frontier = upc.alloc_shared(vertices * 8);
    const upc_array next_frontier = upc.alloc_shared(vertices * 8);
    const upc_array counters = upc.alloc_shared(threads * 8);  // [0] used

    // Local initialisation of the owned blocks (standard UPC idiom: write
    // shared-local data through a private pointer).
    const auto fill_local = [&](upc_array array, const std::uint64_t* host,
                                std::uint64_t count) {
      const std::uint64_t block = upc.block_size(array) / 8;
      const std::uint64_t local = upc.local_block_bytes(array) / 8;
      const std::uint64_t begin = static_cast<std::uint64_t>(upc.id()) * block;
      if (begin >= count || local == 0) return;
      std::uint64_t n = count - begin < block ? count - begin : block;
      if (n > local) n = local;
      std::memcpy(upc.local_block(array), host + begin, n * 8);
    };
    fill_local(offsets, csr.offsets.data(), vertices + 1);
    fill_local(adjacency, csr.adjacency.data(), csr.edges());
    {
      std::vector<std::uint64_t> noparent(upc.local_block_bytes(parents) / 8,
                                          kNoParent);
      std::memcpy(upc.local_block(parents), noparent.data(),
                  noparent.size() * 8);
    }
    upc.barrier();

    if (upc.id() == 0) {
      upc.sput(parents, root * 8, &root, 8);
      upc.sput(frontier, 0, &root, 8);
      std::uint64_t one = 1;
      upc.sput(counters, 0, &one, 8);
    }
    upc.barrier();

    std::vector<std::uint8_t> visited_cache;
    if (use_visited_cache) visited_cache.assign(vertices, 0);

    std::uint64_t my_edges = 0;
    std::uint64_t my_visited = upc.id() == 0 ? 1 : 0;
    std::uint64_t levels = 0;
    upc_array cur = frontier, next = next_frontier;

    for (;;) {
      std::uint64_t frontier_size = 0;
      upc.sget(counters, 0, &frontier_size, 8);
      if (frontier_size == 0) break;
      ++levels;
      upc.barrier();
      if (upc.id() == 0) {
        const std::uint64_t zero = 0;
        upc.sput(counters, 0, &zero, 8);
      }
      upc.barrier();

      // Static split of the frontier across threads.
      for (std::uint64_t i = upc.id(); i < frontier_size; i += threads) {
        std::uint64_t v = 0;
        upc.sget(cur, i * 8, &v, 8);
        // Two single-word reads (the bounds may live on different owners).
        std::uint64_t range[2];
        upc.sget(offsets, v * 8, &range[0], 8);
        upc.sget(offsets, (v + 1) * 8, &range[1], 8);
        for (std::uint64_t e = range[0]; e < range[1]; ++e) {
          std::uint64_t u = 0;
          upc.sget(adjacency, e * 8, &u, 8);  // one word per edge
          ++my_edges;
          if (use_visited_cache && visited_cache[u]) continue;
          const std::uint64_t old = upc.scas(parents, u * 8, kNoParent, v);
          if (use_visited_cache) visited_cache[u] = 1;
          if (old == kNoParent) {
            const std::uint64_t slot = upc.sadd(counters, 0, 1);
            upc.sput(next, slot * 8, &u, 8);
            ++my_visited;
          }
        }
      }
      upc.barrier();
      std::swap(cur, next);
    }

    total_edges.fetch_add(my_edges, std::memory_order_relaxed);
    out_visited.fetch_add(my_visited, std::memory_order_relaxed);
    if (upc.id() == 0)
      out_levels.store(levels, std::memory_order_relaxed);
    upc.barrier();
  });
  result.seconds = watch.elapsed_s();
  result.edges_traversed = total_edges.load();
  result.visited = out_visited.load();
  result.levels = out_levels.load();
  return result;
}

}  // namespace gmt::baselines
