#include "common/time.hpp"

#include <thread>

namespace gmt {

namespace {

double calibrate_tsc_hz() {
  // Two short windows; take the larger estimate to discount preemption.
  double best = 0;
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t w0 = wall_ns();
    const std::uint64_t t0 = rdtsc();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::uint64_t t1 = rdtsc();
    const std::uint64_t w1 = wall_ns();
    const double hz = static_cast<double>(t1 - t0) /
                      (static_cast<double>(w1 - w0) * 1e-9);
    if (hz > best) best = hz;
  }
  return best > 0 ? best : 1e9;
}

}  // namespace

double tsc_hz() {
  static const double hz = calibrate_tsc_hz();
  return hz;
}

}  // namespace gmt
