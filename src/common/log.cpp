#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/time.hpp"

namespace gmt {

namespace {

std::atomic<int> g_level{-1};
std::mutex g_mutex;

LogLevel level_from_env() {
  const char* env = std::getenv("GMT_LOG_LEVEL");
  if (!env) return LogLevel::kWarn;
  if (!std::strcmp(env, "error")) return LogLevel::kError;
  if (!std::strcmp(env, "warn")) return LogLevel::kWarn;
  if (!std::strcmp(env, "info")) return LogLevel::kInfo;
  if (!std::strcmp(env, "debug")) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = static_cast<int>(level_from_env());
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[gmt %-5s %12.6f] ", level_name(level), wall_s());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace gmt
