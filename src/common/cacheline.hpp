// Cache-line geometry and false-sharing avoidance helpers.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace gmt {

// Hardcoded rather than std::hardware_destructive_interference_size: the
// libstdc++ value is a compile-time guess anyway, and 64 matches every x86-64
// part this targets (the paper's Interlagos included).
inline constexpr std::size_t kCacheLine = 64;

// A value padded out to a full cache line so adjacent instances never share.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad[kCacheLine - (sizeof(T) % kCacheLine ? sizeof(T) % kCacheLine
                                                : kCacheLine)];
};

// Cache-line-isolated atomic counter (e.g., per-worker statistics).
struct alignas(kCacheLine) PaddedAtomicU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace gmt
