// Progressive spin backoff.
//
// Every polling loop in the runtime (workers waiting for tasks, the comm
// server polling channel queues, pool acquisition under pressure) uses this
// policy: spin briefly with `pause`, then yield the CPU, then sleep for short
// intervals. On the paper's cluster each specialised thread owns a core and
// pure spinning is fine; on an oversubscribed host (this repo's in-process
// multi-node mode) yielding keeps all simulated nodes live.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace gmt {

inline void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_limit = 64,
                   std::uint32_t yield_limit = 16)
      : spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  // One backoff step; escalates spin -> yield -> sleep.
  void pause() {
    if (step_ < spin_limit_) {
      cpu_relax();
    } else if (step_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++step_;
  }

  void reset() { step_ = 0; }

  bool sleeping() const { return step_ >= spin_limit_ + yield_limit_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t yield_limit_;
  std::uint32_t step_ = 0;
};

}  // namespace gmt
