// Size/count parsing and human-readable formatting ("64KB", "2.5e9", ...).
#pragma once

#include <cstdint>
#include <string>

namespace gmt {

// Parses "64", "64K", "64KB", "2M", "1GB" (binary multiples). Returns false
// on malformed input.
bool parse_size(const std::string& text, std::uint64_t* out);

// "65536" -> "64.0 KB"; used by bench output.
std::string format_bytes(double bytes);

// "2630000000" -> "2.63 GB/s".
std::string format_rate(double bytes_per_second);

// "12345678" -> "12.3 M" (decimal multiples, for counts like MTEPS).
std::string format_count(double count);

}  // namespace gmt
