// Lightweight runtime checks.
//
// GMT_CHECK is always on (cheap invariants on cold paths); GMT_DCHECK
// compiles out in release builds and guards hot-path invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gmt {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "GMT check failed: %s at %s:%d%s%s\n", cond, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace gmt

#define GMT_CHECK(cond)                                        \
  do {                                                         \
    if (__builtin_expect(!(cond), 0))                          \
      ::gmt::check_failed(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define GMT_CHECK_MSG(cond, msg)                           \
  do {                                                     \
    if (__builtin_expect(!(cond), 0))                      \
      ::gmt::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define GMT_DCHECK(cond) GMT_CHECK(cond)
#else
#define GMT_DCHECK(cond) \
  do {                   \
  } while (0)
#endif
