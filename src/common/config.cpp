#include "common/config.hpp"

#include <cstdlib>

#include "common/units.hpp"

namespace gmt {

Config Config::olympus() {
  Config c;
  c.num_workers = 15;
  c.num_helpers = 15;
  c.num_buf_per_channel = 4;
  c.max_tasks_per_worker = 1024;
  c.buffer_size = 64 * 1024;
  c.pin_threads = true;
  return c;
}

Config Config::testing() {
  Config c;
  c.num_workers = 1;
  c.num_helpers = 1;
  c.num_buf_per_channel = 2;
  c.max_tasks_per_worker = 64;
  c.buffer_size = 8 * 1024;
  c.cmd_block_entries = 16;
  c.cmd_block_pool_size = 64;
  c.task_stack_size = 32 * 1024;
  c.pin_threads = false;
  return c;
}

namespace {

void env_u32(const char* name, std::uint32_t* out) {
  if (const char* v = std::getenv(name)) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) *out = static_cast<std::uint32_t>(parsed);
  }
}

void env_u64(const char* name, std::uint64_t* out) {
  if (const char* v = std::getenv(name)) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) *out = parsed;
  }
}

void env_probability(const char* name, double* out) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end != v && parsed >= 0.0 && parsed <= 1.0) *out = parsed;
  }
}

void env_bool(const char* name, bool* out) {
  if (const char* v = std::getenv(name)) *out = v[0] != '0';
}

}  // namespace

void Config::apply_env() {
  env_u32("GMT_NUM_WORKERS", &num_workers);
  env_u32("GMT_NUM_HELPERS", &num_helpers);
  env_u32("GMT_NUM_BUF_PER_CHANNEL", &num_buf_per_channel);
  env_u32("GMT_MAX_TASKS_PER_WORKER", &max_tasks_per_worker);
  env_u32("GMT_BUFFER_SIZE", &buffer_size);
  env_u32("GMT_CMD_BLOCK_ENTRIES", &cmd_block_entries);
  env_u32("GMT_CMD_BLOCK_POOL_SIZE", &cmd_block_pool_size);
  env_u64("GMT_CMD_BLOCK_TIMEOUT_NS", &cmd_block_timeout_ns);
  env_u64("GMT_AGG_QUEUE_TIMEOUT_NS", &agg_queue_timeout_ns);
  env_u32("GMT_FLOW_CREDITS", &flow_credits);
  env_bool("GMT_ADAPTIVE_FLUSH", &adaptive_flush);
  env_bool("GMT_COMBINE", &combine);
  env_u32("GMT_COMBINE_TABLE", &combine_table);
  env_bool("GMT_CACHE", &cache);
  env_u64("GMT_CACHE_BYTES", &cache_bytes);
  env_u32("GMT_ACTOR_MAILBOX_DEPTH", &actor_mailbox_depth);
  if (const char* v = std::getenv("GMT_TASK_STACK_SIZE")) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) task_stack_size = parsed;
  }
  env_bool("GMT_LOCAL_FAST_PATH", &local_fast_path);
  env_bool("GMT_PIN_THREADS", &pin_threads);

  env_bool("GMT_TASK_POOL", &task_pool);
  env_u32("GMT_TASK_POOL_RESERVE", &task_pool_reserve);
  env_u32("GMT_TASK_POOL_CAP", &task_pool_cap);
  env_u32("GMT_ITB_POOL_SIZE", &itb_pool_size);

  env_bool("GMT_TRACE", &trace);
  if (const char* v = std::getenv("GMT_TRACE_FILE")) trace_file = v;
  env_u32("GMT_OBS_INTERVAL_MS", &obs_interval_ms);

  env_bool("GMT_RELIABLE", &reliable_transport);
  env_u64("GMT_RETRY_TIMEOUT_NS", &retry_timeout_ns);
  env_u64("GMT_RETRY_TIMEOUT_MAX_NS", &retry_timeout_max_ns);
  env_u32("GMT_RETRY_BUDGET", &retry_budget);
  env_u64("GMT_ACK_DELAY_NS", &ack_delay_ns);
  env_u32("GMT_REORDER_WINDOW", &reorder_window);

  env_bool("GMT_MEMBERSHIP", &membership);
  env_u64("GMT_HEARTBEAT_NS", &heartbeat_ns);
  env_u64("GMT_SUSPECT_TIMEOUT_NS", &suspect_timeout_ns);
  env_bool("GMT_REPLICATE", &replicate);
  env_u64("GMT_REPLICATE_MAX_BYTES", &replicate_max_bytes);

  env_probability("GMT_FAULT_DROP", &fault.drop);
  env_probability("GMT_FAULT_DUPLICATE", &fault.duplicate);
  env_probability("GMT_FAULT_CORRUPT", &fault.corrupt);
  env_probability("GMT_FAULT_REORDER", &fault.reorder);
  env_probability("GMT_FAULT_BACKPRESSURE", &fault.backpressure);
  env_u64("GMT_FAULT_SEED", &fault.seed);
  env_u32("GMT_FAULT_KILL_NODE", &fault.kill_node);
  env_u64("GMT_FAULT_KILL_AT", &fault.kill_at);
  // A killed peer is only survivable with the membership layer; enabling
  // the kill fault from the environment implies GMT_MEMBERSHIP (and, below,
  // GMT_RELIABLE) unless explicitly forced off.
  if (fault.kill_node != FaultInjection::kNoKill &&
      std::getenv("GMT_MEMBERSHIP") == nullptr)
    membership = true;
  // Membership runs over the reliability layer (suspicion feeds off acks
  // and retransmit exhaustion), so it implies GMT_RELIABLE the same way
  // lossy faults do.
  if (membership && std::getenv("GMT_RELIABLE") == nullptr)
    reliable_transport = true;
  // Lossy fault injection is unusable without the reliability layer (a
  // dropped reply would hang the blocked worker); enabling faults from the
  // environment implies GMT_RELIABLE unless it was explicitly forced off.
  if (fault.lossy() && std::getenv("GMT_RELIABLE") == nullptr)
    reliable_transport = true;
  // Credit grants ride the reliability layer's acks, so enabling flow
  // control from the environment implies GMT_RELIABLE the same way.
  if (flow_credits > 0 && std::getenv("GMT_RELIABLE") == nullptr)
    reliable_transport = true;
}

std::string Config::validate() const {
  if (num_workers == 0) return "num_workers must be >= 1";
  if (num_helpers == 0) return "num_helpers must be >= 1";
  if (num_buf_per_channel == 0) return "num_buf_per_channel must be >= 1";
  if (max_tasks_per_worker == 0) return "max_tasks_per_worker must be >= 1";
  if (buffer_size < 512) return "buffer_size must be >= 512 bytes";
  if (cmd_block_entries == 0) return "cmd_block_entries must be >= 1";
  if (cmd_block_pool_size < num_workers + num_helpers)
    return "cmd_block_pool_size must cover all workers and helpers";
  if (task_stack_size < 16 * 1024) return "task_stack_size must be >= 16KB";
  if (task_pool_cap == 0) return "task_pool_cap must be >= 1";
  if (task_pool_reserve > task_pool_cap)
    return "task_pool_reserve must be <= task_pool_cap";
  if (itb_pool_size == 0) return "itb_pool_size must be >= 1";
  if (retry_timeout_ns == 0) return "retry_timeout_ns must be > 0";
  if (retry_timeout_max_ns < retry_timeout_ns)
    return "retry_timeout_max_ns must be >= retry_timeout_ns";
  if (retry_budget == 0) return "retry_budget must be >= 1";
  if (reorder_window == 0) return "reorder_window must be >= 1";
  for (double p : {fault.drop, fault.duplicate, fault.corrupt, fault.reorder,
                   fault.backpressure})
    if (p < 0.0 || p > 1.0) return "fault probabilities must be in [0, 1]";
  if (fault.lossy() && !reliable_transport)
    return "lossy fault injection requires reliable_transport";
  if (flow_credits > 0 && !reliable_transport)
    return "flow_credits requires reliable_transport (grants ride acks)";
  if (combine &&
      (combine_table < 2 || (combine_table & (combine_table - 1)) != 0))
    return "combine_table must be a power of two >= 2";
  if (combine && combine_table > (1u << 20))
    return "combine_table larger than 2^20 entries is surely a typo";
  if (cache && cache_bytes < 1024)
    return "cache_bytes must be >= 1024 (one cache line)";
  if (cache && cache_bytes > (std::uint64_t{1} << 34))
    return "cache_bytes larger than 16 GiB is surely a typo";
  if (actor_mailbox_depth == 0) return "actor_mailbox_depth must be >= 1";
  if (membership && !reliable_transport)
    return "membership requires reliable_transport (health rides acks)";
  if (membership && heartbeat_ns == 0) return "heartbeat_ns must be > 0";
  if (membership && suspect_timeout_ns < 2 * heartbeat_ns)
    return "suspect_timeout_ns must be >= 2 * heartbeat_ns";
  return {};
}

}  // namespace gmt
