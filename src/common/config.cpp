#include "common/config.hpp"

#include <cstdlib>

#include "common/units.hpp"

namespace gmt {

Config Config::olympus() {
  Config c;
  c.num_workers = 15;
  c.num_helpers = 15;
  c.num_buf_per_channel = 4;
  c.max_tasks_per_worker = 1024;
  c.buffer_size = 64 * 1024;
  c.pin_threads = true;
  return c;
}

Config Config::testing() {
  Config c;
  c.num_workers = 1;
  c.num_helpers = 1;
  c.num_buf_per_channel = 2;
  c.max_tasks_per_worker = 64;
  c.buffer_size = 8 * 1024;
  c.cmd_block_entries = 16;
  c.cmd_block_pool_size = 64;
  c.task_stack_size = 32 * 1024;
  c.pin_threads = false;
  return c;
}

namespace {

void env_u32(const char* name, std::uint32_t* out) {
  if (const char* v = std::getenv(name)) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) *out = static_cast<std::uint32_t>(parsed);
  }
}

void env_u64(const char* name, std::uint64_t* out) {
  if (const char* v = std::getenv(name)) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) *out = parsed;
  }
}

}  // namespace

void Config::apply_env() {
  env_u32("GMT_NUM_WORKERS", &num_workers);
  env_u32("GMT_NUM_HELPERS", &num_helpers);
  env_u32("GMT_NUM_BUF_PER_CHANNEL", &num_buf_per_channel);
  env_u32("GMT_MAX_TASKS_PER_WORKER", &max_tasks_per_worker);
  env_u32("GMT_BUFFER_SIZE", &buffer_size);
  env_u32("GMT_CMD_BLOCK_ENTRIES", &cmd_block_entries);
  env_u32("GMT_CMD_BLOCK_POOL_SIZE", &cmd_block_pool_size);
  env_u64("GMT_CMD_BLOCK_TIMEOUT_NS", &cmd_block_timeout_ns);
  env_u64("GMT_AGG_QUEUE_TIMEOUT_NS", &agg_queue_timeout_ns);
  if (const char* v = std::getenv("GMT_TASK_STACK_SIZE")) {
    std::uint64_t parsed;
    if (parse_size(v, &parsed)) task_stack_size = parsed;
  }
  if (const char* v = std::getenv("GMT_LOCAL_FAST_PATH"))
    local_fast_path = v[0] != '0';
  if (const char* v = std::getenv("GMT_PIN_THREADS"))
    pin_threads = v[0] != '0';
}

std::string Config::validate() const {
  if (num_workers == 0) return "num_workers must be >= 1";
  if (num_helpers == 0) return "num_helpers must be >= 1";
  if (num_buf_per_channel == 0) return "num_buf_per_channel must be >= 1";
  if (max_tasks_per_worker == 0) return "max_tasks_per_worker must be >= 1";
  if (buffer_size < 512) return "buffer_size must be >= 512 bytes";
  if (cmd_block_entries == 0) return "cmd_block_entries must be >= 1";
  if (cmd_block_pool_size < num_workers + num_helpers)
    return "cmd_block_pool_size must cover all workers and helpers";
  if (task_stack_size < 16 * 1024) return "task_stack_size must be >= 16KB";
  return {};
}

}  // namespace gmt
