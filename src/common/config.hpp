// Runtime configuration (paper Table IV).
//
// The paper's Olympus configuration is NUM_WORKERS=15, NUM_HELPERS=15,
// NUM_BUF_PER_CHANNEL=4, MAX_NUM_TASKS_PER_WORKER=1024, SIZE_BUFFERS=64KB —
// one specialised thread per core on a 32-core node (15+15+1 comm server,
// one core left for the OS). In-process multi-node mode defaults much
// smaller so several simulated nodes stay live on a few host cores; every
// field can be overridden programmatically or via GMT_* environment
// variables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gmt {

struct Config {
  // Specialised threads per node.
  std::uint32_t num_workers = 2;
  std::uint32_t num_helpers = 1;

  // Aggregation buffers available per worker/helper->comm-server channel.
  std::uint32_t num_buf_per_channel = 4;

  // Concurrent user-level tasks a single worker multiplexes.
  std::uint32_t max_tasks_per_worker = 1024;

  // Aggregation buffer capacity in bytes (the paper's 64 KB sweet spot).
  std::uint32_t buffer_size = 64 * 1024;

  // Commands per pre-aggregation command block.
  std::uint32_t cmd_block_entries = 64;

  // Command blocks available per node (pool size).
  std::uint32_t cmd_block_pool_size = 256;

  // Flush timeouts (nanoseconds): a command block or aggregation queue that
  // waited longer than this is flushed even if not full (paper §IV-C
  // condition (ii)).
  std::uint64_t cmd_block_timeout_ns = 50'000;
  std::uint64_t agg_queue_timeout_ns = 100'000;

  // User-level task stack size in bytes.
  std::size_t task_stack_size = 64 * 1024;

  // Execute node-local commands directly in the issuing worker instead of
  // routing them through a helper (fast path; ablation knob).
  bool local_fast_path = true;

  // Pin specialised threads to cores (only sensible when the host has at
  // least as many cores as threads; off by default for in-process mode).
  bool pin_threads = false;

  // Paper Table IV values.
  static Config olympus();

  // Small configuration for unit tests on an oversubscribed host.
  static Config testing();

  // Applies GMT_NUM_WORKERS, GMT_NUM_HELPERS, GMT_BUFFER_SIZE,
  // GMT_MAX_TASKS_PER_WORKER, ... environment overrides.
  void apply_env();

  // Fails (returns message) on inconsistent settings, e.g. zero workers or a
  // buffer smaller than the largest single command.
  std::string validate() const;
};

}  // namespace gmt
