// Runtime configuration (paper Table IV).
//
// The paper's Olympus configuration is NUM_WORKERS=15, NUM_HELPERS=15,
// NUM_BUF_PER_CHANNEL=4, MAX_NUM_TASKS_PER_WORKER=1024, SIZE_BUFFERS=64KB —
// one specialised thread per core on a 32-core node (15+15+1 comm server,
// one core left for the OS). In-process multi-node mode defaults much
// smaller so several simulated nodes stay live on a few host cores; every
// field can be overridden programmatically or via GMT_* environment
// variables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gmt {

// Fault-injection knobs consumed by net::FaultyTransport. Probabilities
// are per message in [0, 1]; all zero (the default) means the decorator is
// not installed at all.
struct FaultInjection {
  double drop = 0;          // message silently discarded
  double duplicate = 0;     // message delivered twice
  double corrupt = 0;       // one random payload bit flipped
  double reorder = 0;       // message held back and released later
  double backpressure = 0;  // send() transiently refused
  std::uint64_t seed = 0x5eed;     // deterministic per-endpoint streams
  std::uint32_t reorder_depth = 4; // sends a held message lets pass
  std::uint64_t reorder_hold_ns = 200'000;  // max hold before forced release

  // Peer-kill: after the victim has sent `kill_at` messages, its endpoint
  // goes silent — every send swallowed, every receive discarded — so the
  // rest of the cluster sees a fail-stop crash mid-run. kNoKill = off.
  static constexpr std::uint32_t kNoKill = 0xffffffffu;
  std::uint32_t kill_node = kNoKill;
  std::uint64_t kill_at = 0;  // victim sends before going dark

  bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0 ||
           backpressure > 0 || kill_node != kNoKill;
  }
  // Faults that lose or damage messages (need the reliability layer to
  // preserve correctness; backpressure alone is handled by plain retry).
  bool lossy() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0;
  }
};

struct Config {
  // Specialised threads per node.
  std::uint32_t num_workers = 2;
  std::uint32_t num_helpers = 1;

  // Aggregation buffers available per worker/helper->comm-server channel.
  std::uint32_t num_buf_per_channel = 4;

  // Concurrent user-level tasks a single worker multiplexes.
  std::uint32_t max_tasks_per_worker = 1024;

  // Aggregation buffer capacity in bytes (the paper's 64 KB sweet spot).
  std::uint32_t buffer_size = 64 * 1024;

  // Commands per pre-aggregation command block.
  std::uint32_t cmd_block_entries = 64;

  // Command blocks available per node (pool size).
  std::uint32_t cmd_block_pool_size = 256;

  // Flush timeouts (nanoseconds): a command block or aggregation queue that
  // waited longer than this is flushed even if not full (paper §IV-C
  // condition (ii)).
  std::uint64_t cmd_block_timeout_ns = 50'000;
  std::uint64_t agg_queue_timeout_ns = 100'000;

  // ---- end-to-end flow control + adaptive flushing (aggregation layer).

  // Per-destination credit window in aggregation buffers: a sender may have
  // at most this many unacknowledged-by-drain buffers outstanding toward
  // each peer; the receiver grants credits back as its helpers drain
  // buffers (grants ride the reliability layer's acks). 0 = flow control
  // off (today's behaviour). Requires reliable_transport when non-zero.
  std::uint32_t flow_credits = 0;

  // Adapt the block/queue flush deadlines per destination by AIMD on flush
  // outcomes: an underfilled deadline flush halves the deadline, a
  // size-triggered flush grows it 5/4 — bulk traffic fills 64 KB buffers,
  // sparse traffic converges to the adaptive floor for low latency (Fig.
  // 4's sweet spot without hand-tuning the fixed timeouts above). Off =
  // fixed timeouts (ablation baseline).
  bool adaptive_flush = false;

  // Source-side combining: hold commutative fire-and-forget commands
  // (kAtomicAdd|kNoReply, non-blocking kPutValue) in a small per-slot,
  // per-destination direct-mapped table in front of the command blocks and
  // merge later same-(handle,offset,width) ops into the resident entry —
  // adds sum, puts dedup last-writer-wins — so a hot key costs one wire
  // command per flush window instead of one per op. Off = today's
  // behaviour, zero cost on the append path.
  bool combine = false;

  // Entries per combining table (per slot, per destination). Power of two;
  // direct-mapped with evict-on-collision, so bigger tables tolerate more
  // simultaneously-hot keys at ~56 bytes/entry of footprint.
  std::uint32_t combine_table = 256;

  // ---- read-mostly software cache (src/runtime/swcache).

  // Per-node cache of remote read data in front of op_get, keyed by
  // (handle, 1 KB line). Writes broadcast kCacheInval commands to every
  // live peer (riding the writing op's completion), so a completed write
  // is never observed stale — the intended workloads are read-mostly
  // (immutable/rarely-written arrays), where hits run at local-memory
  // rates. Off = today's behaviour, zero cost on every path. The knob
  // must agree across all nodes of a cluster (invalidations are only
  // generated by nodes that have it on).
  bool cache = false;

  // Cache capacity in bytes per node (rounded down to a power-of-two
  // number of 1 KB lines, minimum one line).
  std::uint64_t cache_bytes = 4 * 1024 * 1024;

  // ---- actor/mailbox layer (src/actor, include/gmt/actor.hpp).

  // Bounded mailbox depth: the most *unprocessed* messages one node may
  // have in flight toward a single (node, actor-id) mailbox. A sender at
  // the limit parks on the aggregation layer's stall-ticket list (no
  // spinning) until delivery acks drain the window. The bound is per
  // sending node, so one mailbox buffers at most depth * num_nodes
  // messages regardless of offered load.
  std::uint32_t actor_mailbox_depth = 1024;

  // User-level task stack size in bytes.
  std::size_t task_stack_size = 64 * 1024;

  // ---- task-lifecycle pools (paper §IV-D: sub-µs spawn/switch/complete).

  // Recycle task control blocks (stack + context re-arm) through per-worker
  // free-lists, iteration blocks through a per-node pool, and schedule with
  // the O(1) parked/wake protocol. Off = the allocating path (new/delete
  // per task, scheduler scans blocked tasks) — kept as an ablation knob.
  bool task_pool = true;

  // TCBs (with stacks) pre-created per worker at startup.
  std::uint32_t task_pool_reserve = 8;

  // Free-list cap per worker: TCBs beyond this are genuinely freed so a
  // burst does not pin stack memory forever.
  std::uint32_t task_pool_cap = 2048;

  // Iteration blocks pre-allocated per node (heap fallback on exhaustion).
  std::uint32_t itb_pool_size = 512;

  // Execute node-local commands directly in the issuing worker instead of
  // routing them through a helper (fast path; ablation knob).
  bool local_fast_path = true;

  // Pin specialised threads to cores (only sensible when the host has at
  // least as many cores as threads; off by default for in-process mode).
  bool pin_threads = false;

  // ---- reliability layer (frame/seq/ack/retransmit between comm servers).
  // Off by default: the framing and protocol code is not on any path when
  // disabled, so fault-free runs are bit-identical to the bare transport.

  // Frame every aggregation buffer (magic + seq + CRC32C), ack cumulatively
  // and retransmit unacked frames — required for correctness on transports
  // that drop, duplicate, reorder or corrupt messages.
  bool reliable_transport = false;

  // Initial retransmit timeout; doubles per attempt up to the max.
  std::uint64_t retry_timeout_ns = 500'000;
  std::uint64_t retry_timeout_max_ns = 8'000'000;

  // Retransmit attempts per frame before the comm server raises a hard
  // error (instead of hanging the blocked worker forever).
  std::uint32_t retry_budget = 64;

  // How long received data may wait for a reverse-direction frame to
  // piggyback its ack before a standalone ack frame is sent.
  std::uint64_t ack_delay_ns = 100'000;

  // Out-of-order frames buffered per source before arrivals beyond the
  // window are dropped (the sender retransmits them).
  std::uint32_t reorder_window = 256;

  // ---- failure detection + fail-stop membership (src/runtime/membership).
  // Off by default: with membership disabled, retry-budget exhaustion keeps
  // its historical hard abort and none of the protocol below runs.

  // Detect dead peers and exclude them via membership epochs instead of
  // aborting. Requires reliable_transport. Implies: heartbeats to idle
  // peers, suspicion on silence/retry-exhaustion, epoch propose/ack led by
  // the lowest live node id, and GMT_ERR_NODE_LOST on affected operations.
  bool membership = false;

  // Heartbeat interval: the comm server sends an empty kHeartbeat frame to
  // each live peer it has not otherwise transmitted to in this long.
  std::uint64_t heartbeat_ns = 200'000;

  // Silence threshold: a peer not heard from (any valid frame) in this long
  // is suspected dead. Must comfortably exceed heartbeat_ns.
  std::uint64_t suspect_timeout_ns = 10'000'000;

  // Opt-in replication: global arrays up to replicate_max_bytes (block-
  // partitioned, >1 partition) mirror each partition to the next node so a
  // single failure is survivable — the epoch change remaps lost partitions
  // to their replicas and reads/writes keep working.
  bool replicate = false;
  std::uint64_t replicate_max_bytes = 1 << 20;

  // ---- observability (src/obs: metric registries + event tracer).

  // Arm the event tracer from startup (also via GMT_TRACE=1).
  bool trace = false;

  // Dump the Chrome trace JSON here when the cluster shuts down; empty =
  // no automatic dump (call gmt::dump_trace yourself).
  std::string trace_file;

  // Record a merged interval snapshot every N ms (0 = sampler off).
  std::uint32_t obs_interval_ms = 0;

  // Transport fault injection (applied by Cluster when any knob is set).
  FaultInjection fault;

  // Paper Table IV values.
  static Config olympus();

  // Small configuration for unit tests on an oversubscribed host.
  static Config testing();

  // Applies GMT_NUM_WORKERS, GMT_NUM_HELPERS, GMT_BUFFER_SIZE,
  // GMT_MAX_TASKS_PER_WORKER, ... environment overrides.
  void apply_env();

  // Fails (returns message) on inconsistent settings, e.g. zero workers or a
  // buffer smaller than the largest single command.
  std::string validate() const;
};

}  // namespace gmt
