// Minimal levelled logger.
//
// The runtime logs only on cold paths (startup, shutdown, configuration,
// fatal conditions); hot paths use statistics counters instead. Level is
// controlled with GMT_LOG_LEVEL (error|warn|info|debug) in the environment.
#pragma once

#include <cstdio>
#include <string>

namespace gmt {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace gmt

#define GMT_LOG_ERROR(...) ::gmt::log_message(::gmt::LogLevel::kError, __VA_ARGS__)
#define GMT_LOG_WARN(...) ::gmt::log_message(::gmt::LogLevel::kWarn, __VA_ARGS__)
#define GMT_LOG_INFO(...) ::gmt::log_message(::gmt::LogLevel::kInfo, __VA_ARGS__)
#define GMT_LOG_DEBUG(...) ::gmt::log_message(::gmt::LogLevel::kDebug, __VA_ARGS__)
