#include "common/units.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace gmt {

bool parse_size(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return false;
  std::uint64_t multiplier = 1;
  if (*end) {
    switch (std::toupper(*end)) {
      case 'K': multiplier = 1ULL << 10; break;
      case 'M': multiplier = 1ULL << 20; break;
      case 'G': multiplier = 1ULL << 30; break;
      case 'T': multiplier = 1ULL << 40; break;
      default: return false;
    }
    ++end;
    if (*end && std::toupper(*end) == 'B') ++end;
    if (*end) return false;
  }
  *out = static_cast<std::uint64_t>(value * static_cast<double>(multiplier));
  return true;
}

namespace {

std::string format_scaled(double value, const char* const* suffixes,
                          int count, double base) {
  int idx = 0;
  while (value >= base && idx + 1 < count) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  static const char* const kSuffixes[] = {"B", "KB", "MB", "GB", "TB"};
  return format_scaled(bytes, kSuffixes, 5, 1024.0);
}

std::string format_rate(double bytes_per_second) {
  static const char* const kSuffixes[] = {"B/s", "KB/s", "MB/s", "GB/s",
                                          "TB/s"};
  return format_scaled(bytes_per_second, kSuffixes, 5, 1024.0);
}

std::string format_count(double count) {
  static const char* const kSuffixes[] = {"", "K", "M", "G", "T"};
  return format_scaled(count, kSuffixes, 5, 1000.0);
}

}  // namespace gmt
