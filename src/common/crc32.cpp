#include "common/crc32.hpp"

#include <array>

namespace gmt {

namespace {

// Slicing-by-8 tables for the Castagnoli polynomial (reflected 0x82f63b78).
struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int slice = 1; slice < 8; ++slice)
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xff];
  }
};

std::uint32_t crc32c_sw(const std::uint8_t* p, std::size_t size,
                        std::uint32_t crc) {
  static const Tables tables;
  const auto& t = tables.t;
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  return crc;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const std::uint8_t* p, std::size_t size, std::uint32_t crc) {
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size--) crc = __builtin_ia32_crc32qi(crc, *p++);
  return crc;
}
#endif

using CrcFn = std::uint32_t (*)(const std::uint8_t*, std::size_t,
                                std::uint32_t);

CrcFn resolve() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("sse4.2")) return crc32c_hw;
#endif
  return crc32c_sw;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const CrcFn fn = resolve();
  return ~fn(static_cast<const std::uint8_t*>(data), size, ~seed);
}

}  // namespace gmt
