// CRC32C (Castagnoli) checksums for wire framing.
//
// The reliability layer stamps every frame with a CRC so a corrupted
// aggregation buffer is detected and dropped (then recovered by
// retransmission) instead of being parsed into garbage commands. Uses the
// SSE4.2 crc32 instruction when the host supports it, with a slicing-by-8
// software fallback, behind a function pointer resolved once at startup.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gmt {

// CRC32C of `size` bytes. `seed` chains partial computations: pass the
// previous return value to continue a checksum across fragments.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace gmt
