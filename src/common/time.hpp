// Timing: wall clock, TSC cycle counter, and a calibrated cycles<->seconds
// conversion used both by measurements (Table III) and the simulator's
// virtual clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace gmt {

// Monotonic wall-clock time in nanoseconds.
inline std::uint64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double wall_s() { return static_cast<double>(wall_ns()) * 1e-9; }

// Raw TSC read. On every x86-64 part this project targets the TSC is
// invariant (constant rate across idle states), so it is usable as a clock.
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return wall_ns();
#endif
}

// Serialising TSC read for measurement boundaries.
inline std::uint64_t rdtscp() {
#if defined(__x86_64__)
  std::uint32_t lo, hi, aux;
  asm volatile("rdtscp" : "=a"(lo), "=d"(hi), "=c"(aux));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return wall_ns();
#endif
}

// Measured TSC frequency in Hz; calibrated once on first use (~10 ms).
double tsc_hz();

inline double cycles_to_ns(double cycles) { return cycles / tsc_hz() * 1e9; }
inline double ns_to_cycles(double ns) { return ns * 1e-9 * tsc_hz(); }

// Simple scope timer for benchmarks and tests.
class StopWatch {
 public:
  StopWatch() : start_(wall_ns()) {}
  void reset() { start_ = wall_ns(); }
  double elapsed_s() const {
    return static_cast<double>(wall_ns() - start_) * 1e-9;
  }
  std::uint64_t elapsed_ns() const { return wall_ns() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace gmt
