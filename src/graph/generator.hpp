// Graph workload generators.
//
// The paper evaluates on "randomly generated graphs" with a bounded random
// out-degree (up to 4000 edges per vertex, uniform endpoints) for BFS/GRW
// weak scaling, plus a fixed random graph for strong scaling. Uniform
// generation is implemented here together with an R-MAT generator (the
// Graph500 §V-B reference workload) for power-law experiments. All
// generation is deterministic from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace gmt::graph {

struct Edge {
  std::uint64_t src;
  std::uint64_t dst;
};

struct UniformConfig {
  std::uint64_t vertices = 1 << 10;
  // Out-degree drawn uniformly from [min_degree, max_degree].
  std::uint32_t min_degree = 1;
  std::uint32_t max_degree = 16;
  std::uint64_t seed = 42;
};

// Random graph: per-vertex uniform out-degree, uniform random endpoints
// (self-loops permitted, as in the paper's generator).
std::vector<Edge> generate_uniform(const UniformConfig& config);

struct RmatConfig {
  std::uint32_t scale = 10;        // vertices = 2^scale
  std::uint32_t edge_factor = 16;  // edges = edge_factor * vertices
  // Graph500 partition probabilities.
  double a = 0.57, b = 0.19, c = 0.19;
  std::uint64_t seed = 42;
};

// R-MAT power-law generator (recursive quadrant descent).
std::vector<Edge> generate_rmat(const RmatConfig& config);

// Compressed sparse row form of an edge list (host-side; the distributed
// graph is built from this).
struct Csr {
  std::uint64_t vertices = 0;
  std::vector<std::uint64_t> offsets;    // size vertices + 1
  std::vector<std::uint64_t> adjacency;  // size edges

  std::uint64_t edges() const { return adjacency.size(); }
  std::uint64_t degree(std::uint64_t v) const {
    return offsets[v + 1] - offsets[v];
  }
};

Csr build_csr(std::uint64_t vertices, const std::vector<Edge>& edges);

}  // namespace gmt::graph
