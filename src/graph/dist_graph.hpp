// Distributed CSR graph over GMT global arrays.
//
// Offsets and adjacency live in block-distributed gmt_arrays, so vertices
// and edges spread uniformly across nodes regardless of structure — the
// "allocate the difficult-to-partition dataset in the global space" pattern
// the paper's kernels rely on. All accessors run inside tasks.
#pragma once

#include <cstdint>

#include "gmt/gmt.hpp"
#include "graph/generator.hpp"

namespace gmt::graph {

// Trivially copyable: passed through gmt_parfor argument buffers.
struct DistGraph {
  gmt_handle offsets = kNullHandle;    // (vertices + 1) x u64
  gmt_handle adjacency = kNullHandle;  // edges x u64
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;

  // Uploads a host CSR into freshly allocated global arrays. Must run
  // inside a task; the upload itself is parallelised with a nested parfor.
  static DistGraph build(const Csr& csr);

  void destroy();

  // Degree and adjacency range of v (two offset reads).
  std::uint64_t degree(std::uint64_t v) const {
    std::uint64_t range[2];
    gmt_get(offsets, v * 8, range, 16);
    return range[1] - range[0];
  }

  // Reads [edge_begin, edge_begin+count) neighbour ids into out.
  void neighbors(std::uint64_t edge_begin, std::uint64_t count,
                 std::uint64_t* out) const {
    gmt_get(adjacency, edge_begin * 8, out, count * 8);
  }

  // Convenience: adjacency bounds of v.
  void edge_range(std::uint64_t v, std::uint64_t* begin,
                  std::uint64_t* end) const {
    std::uint64_t range[2];
    gmt_get(offsets, v * 8, range, 16);
    *begin = range[0];
    *end = range[1];
  }
};

}  // namespace gmt::graph
