#include "graph/generator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gmt::graph {

std::vector<Edge> generate_uniform(const UniformConfig& config) {
  GMT_CHECK(config.vertices > 0);
  GMT_CHECK(config.min_degree <= config.max_degree);
  Xoshiro256 rng(config.seed);
  std::vector<Edge> edges;
  const std::uint64_t span = config.max_degree - config.min_degree + 1;
  edges.reserve(config.vertices *
                ((config.min_degree + config.max_degree) / 2 + 1));
  for (std::uint64_t v = 0; v < config.vertices; ++v) {
    const std::uint64_t degree = config.min_degree + rng.below(span);
    for (std::uint64_t e = 0; e < degree; ++e)
      edges.push_back(Edge{v, rng.below(config.vertices)});
  }
  return edges;
}

std::vector<Edge> generate_rmat(const RmatConfig& config) {
  const std::uint64_t vertices = 1ULL << config.scale;
  const std::uint64_t count = vertices * config.edge_factor;
  Xoshiro256 rng(config.seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  const double ab = config.a + config.b;
  const double abc = ab + config.c;
  for (std::uint64_t e = 0; e < count; ++e) {
    std::uint64_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < config.scale; ++bit) {
      const double r = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (r >= abc) {
        src |= 1;
        dst |= 1;
      } else if (r >= ab) {
        src |= 1;
      } else if (r >= config.a) {
        dst |= 1;
      }
    }
    edges.push_back(Edge{src, dst});
  }
  return edges;
}

Csr build_csr(std::uint64_t vertices, const std::vector<Edge>& edges) {
  Csr csr;
  csr.vertices = vertices;
  csr.offsets.assign(vertices + 1, 0);
  for (const Edge& e : edges) {
    GMT_DCHECK(e.src < vertices && e.dst < vertices);
    ++csr.offsets[e.src + 1];
  }
  for (std::uint64_t v = 0; v < vertices; ++v)
    csr.offsets[v + 1] += csr.offsets[v];
  csr.adjacency.resize(edges.size());
  std::vector<std::uint64_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (const Edge& e : edges) csr.adjacency[cursor[e.src]++] = e.dst;
  return csr;
}

}  // namespace gmt::graph
