#include "graph/dist_graph.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace gmt::graph {

namespace {

// Upload task arguments: which host array to copy into which handle.
struct UploadArgs {
  gmt_handle handle;
  const std::uint64_t* host;
  std::uint64_t count;
  std::uint64_t stripe;
};

void upload_body(std::uint64_t stripe_index, const void* raw) {
  UploadArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::uint64_t begin = stripe_index * args.stripe;
  if (begin >= args.count) return;
  const std::uint64_t count =
      args.stripe < args.count - begin ? args.stripe : args.count - begin;
  gmt_put(args.handle, begin * 8, args.host + begin, count * 8);
}

void upload(gmt_handle handle, const std::uint64_t* host,
            std::uint64_t count) {
  // Stripes sized so each task moves ~64 KB (one aggregation buffer).
  const std::uint64_t stripe = 8 * 1024;
  const std::uint64_t stripes = (count + stripe - 1) / stripe;
  UploadArgs args{handle, host, count, stripe};
  // The host pointer is only valid on the calling node, so the copy tasks
  // must stay local.
  gmt_parfor(stripes, 1, &upload_body, &args, sizeof(args), Spawn::kLocal);
}

}  // namespace

DistGraph DistGraph::build(const Csr& csr) {
  DistGraph graph;
  graph.vertices = csr.vertices;
  graph.edges = csr.edges();
  graph.offsets = gmt_new((csr.vertices + 1) * 8, Alloc::kPartition);
  graph.adjacency =
      gmt_new(graph.edges ? graph.edges * 8 : 8, Alloc::kPartition);
  upload(graph.offsets, csr.offsets.data(), csr.offsets.size());
  if (graph.edges) upload(graph.adjacency, csr.adjacency.data(), graph.edges);
  return graph;
}

void DistGraph::destroy() {
  if (offsets != kNullHandle) gmt_free(offsets);
  if (adjacency != kNullHandle) gmt_free(adjacency);
  offsets = adjacency = kNullHandle;
  vertices = edges = 0;
}

}  // namespace gmt::graph
