// Fiber: one user-level execution (stack + context + entry closure).
//
// The runtime's Task wraps a Fiber; a Fiber is also directly usable, which
// is what the context-switch measurements (Table III) and the uthread unit
// tests do. A fiber is resumed from a host context and suspends back to it;
// the host is whichever OS thread called resume() — fibers may migrate
// between hosts across suspensions.
#pragma once

#include <functional>
#include <utility>

#include "uthread/context.hpp"
#include "uthread/stack.hpp"

namespace gmt {

class Fiber {
 public:
  // The body runs on the fiber's own stack; it may call yield() any number
  // of times and finishes by returning.
  Fiber(Stack stack, std::function<void(Fiber&)> body);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Runs the fiber until it yields or finishes. Must not be called on a
  // finished fiber. Returns true while the fiber has more work.
  bool resume();

  // Called from inside the fiber body: suspends back to the resume() caller.
  void yield();

  bool finished() const { return finished_; }

  // Reclaims the stack after the fiber finished (e.g., back into a pool).
  Stack take_stack() && { return std::move(stack_); }

 private:
  static void entry(void* self);

  Stack stack_;
  std::function<void(Fiber&)> body_;
  Context own_{};   // fiber-side saved context
  Context host_{};  // resumer-side saved context
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace gmt
