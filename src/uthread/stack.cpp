#include "uthread/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

#include "common/assert.hpp"

namespace gmt {

namespace {

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

}  // namespace

Stack::Stack(std::size_t usable_size) {
  usable_size_ = round_up_pages(usable_size);
  mapping_size_ = usable_size_ + page_size();
  mapping_ = mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  GMT_CHECK_MSG(mapping_ != MAP_FAILED, "stack mmap failed");
  // Guard page at the low end: stacks grow down into it on overflow.
  GMT_CHECK(mprotect(mapping_, page_size(), PROT_NONE) == 0);
  usable_ = static_cast<char*>(mapping_) + page_size();
}

Stack::~Stack() {
  if (mapping_) munmap(mapping_, mapping_size_);
}

Stack::Stack(Stack&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      usable_(std::exchange(other.usable_, nullptr)),
      mapping_size_(std::exchange(other.mapping_size_, 0)),
      usable_size_(std::exchange(other.usable_size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    if (mapping_) munmap(mapping_, mapping_size_);
    mapping_ = std::exchange(other.mapping_, nullptr);
    usable_ = std::exchange(other.usable_, nullptr);
    mapping_size_ = std::exchange(other.mapping_size_, 0);
    usable_size_ = std::exchange(other.usable_size_, 0);
  }
  return *this;
}

StackPool::StackPool(std::size_t stack_size, std::size_t initial_population)
    : stack_size_(stack_size) {
  free_.reserve(initial_population);
  for (std::size_t i = 0; i < initial_population; ++i)
    free_.emplace_back(stack_size_);
}

Stack StackPool::acquire() {
  if (free_.empty()) return Stack(stack_size_);
  Stack stack = std::move(free_.back());
  free_.pop_back();
  return stack;
}

void StackPool::release(Stack stack) { free_.push_back(std::move(stack)); }

}  // namespace gmt
