#include "uthread/ucontext_switch.hpp"

#include <cstdint>

#include "common/assert.hpp"

namespace gmt {

namespace {

// makecontext only passes int arguments portably; split the pointer.
void entry_shim(unsigned hi, unsigned lo, unsigned fhi, unsigned flo) {
  auto arg = reinterpret_cast<void*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  auto fn = reinterpret_cast<void (*)(void*)>(
      (static_cast<std::uintptr_t>(fhi) << 32) | flo);
  fn(arg);
}

}  // namespace

void make_ucontext(UContext* out, void* stack_base, std::size_t stack_size,
                   void (*entry)(void*), void* arg, UContext* link) {
  GMT_CHECK(getcontext(&out->ctx) == 0);
  out->ctx.uc_stack.ss_sp = stack_base;
  out->ctx.uc_stack.ss_size = stack_size;
  out->ctx.uc_link = link ? &link->ctx : nullptr;
  const auto a = reinterpret_cast<std::uintptr_t>(arg);
  const auto f = reinterpret_cast<std::uintptr_t>(entry);
  makecontext(&out->ctx, reinterpret_cast<void (*)()>(entry_shim), 4,
              static_cast<unsigned>(a >> 32), static_cast<unsigned>(a),
              static_cast<unsigned>(f >> 32), static_cast<unsigned>(f));
}

void switch_ucontext(UContext* from, UContext* to) {
  GMT_CHECK(swapcontext(&from->ctx, &to->ctx) == 0);
}

}  // namespace gmt
