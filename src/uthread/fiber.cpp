#include "uthread/fiber.hpp"

#include "common/assert.hpp"

namespace gmt {

Fiber::Fiber(Stack stack, std::function<void(Fiber&)> body)
    : stack_(std::move(stack)), body_(std::move(body)) {
  own_ = make_context(stack_.base(), stack_.size(), &Fiber::entry, this);
}

void Fiber::entry(void* self) {
  auto* fiber = static_cast<Fiber*>(self);
  fiber->body_(*fiber);
  fiber->finished_ = true;
  // Final suspension: control returns to resume() and never comes back.
  gmt_ctx_switch(&fiber->own_.sp, fiber->host_.sp);
  GMT_CHECK_MSG(false, "resumed a finished fiber");
}

bool Fiber::resume() {
  GMT_CHECK_MSG(!finished_, "resume() on finished fiber");
  started_ = true;
  switch_context(&host_, own_);
  return !finished_;
}

void Fiber::yield() {
  GMT_DCHECK(started_);
  switch_context(&own_, host_);
}

}  // namespace gmt
