// libc ucontext-based switching — the comparator the paper's custom switch
// is measured against (swapcontext performs a sigprocmask syscall per
// switch). Used only by the ablation benchmark; the runtime always uses the
// custom switch.
#pragma once

#include <ucontext.h>

#include <cstddef>

namespace gmt {

struct UContext {
  ucontext_t ctx;
};

// Prepares a ucontext running entry(arg) on the given stack; `link` resumes
// when entry returns.
void make_ucontext(UContext* out, void* stack_base, std::size_t stack_size,
                   void (*entry)(void*), void* arg, UContext* link);

// swapcontext wrapper (saves signal mask — the cost under study).
void switch_ucontext(UContext* from, UContext* to);

}  // namespace gmt
