// Custom user-level context switching.
//
// The paper (§IV-D): "GMT implements custom context switching primitives
// that avoid some of the lengthy operations (e.g., saving and restoring
// signal mask) performed by the standard libc context switching routines."
// swapcontext() makes a sigprocmask syscall on every switch (~hundreds of
// ns); this switch saves only the SysV callee-saved integer registers and
// the stack pointer, giving the few-hundred-cycle switches of Table III.
//
// Floating-point state: the x87 control word and MXCSR are not saved. Tasks
// inherit the process defaults and the runtime never changes rounding or
// exception masks, so this is safe — and it is exactly the shortcut a
// latency-critical runtime takes.
#pragma once

#include <cstdint>

namespace gmt {

// Opaque context: the saved stack pointer of a suspended execution.
struct Context {
  void* sp = nullptr;
};

using ContextEntry = void (*)(void* arg);

extern "C" {
// Saves the current callee-saved state on the running stack, stores the
// resulting stack pointer into *save_sp, and resumes execution from
// restore_sp. Implemented in context_x86_64.S.
void gmt_ctx_switch(void** save_sp, void* restore_sp);

// Entry glue (assembly): loads the argument and tail-calls the entry
// function; aborts if the entry ever returns.
void gmt_ctx_trampoline();
}

// The 16-byte-aligned usable top of a stack — the anchor every context for
// that stack is built from. Task recycling caches this per TCB so re-arming
// skips the pointer arithmetic and validity checks of make_context.
inline void* context_top(void* stack_base, std::size_t stack_size) {
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~static_cast<std::uintptr_t>(15);
  return reinterpret_cast<void*>(top);
}

// Re-arms a context at a previously computed context_top(): writes only the
// seven-word synthetic frame (callee-saved slots + trampoline return) and
// resets the saved stack pointer. This is the recycled-TCB fast path — no
// alignment recomputation, no checks.
Context rearm_context(void* aligned_top, ContextEntry entry, void* arg);

// Prepares a context on [stack_base, stack_base + stack_size) so that the
// first switch into it invokes entry(arg). The stack top is 16-byte aligned
// per the SysV ABI. entry must never return (finish by switching away).
Context make_context(void* stack_base, std::size_t stack_size,
                     ContextEntry entry, void* arg);

// Switches from the current execution to `to`, saving the current state in
// *from. Returns when something later switches back into *from.
inline void switch_context(Context* from, const Context& to) {
  gmt_ctx_switch(&from->sp, to.sp);
}

}  // namespace gmt
