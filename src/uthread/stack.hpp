// Task stack allocation.
//
// Stacks are mmap'd with an inaccessible guard page below the usable range
// so a task overflowing its stack faults instead of corrupting a neighbour.
// StackPool pre-allocates and recycles stacks: with up to 1024 tasks per
// worker (Table IV), per-task mmap/munmap would dominate spawn cost.
#pragma once

#include <cstddef>
#include <vector>

namespace gmt {

class Stack {
 public:
  // Empty stack (no mapping); assign a real one before use.
  Stack() = default;

  // Allocates usable_size bytes of stack plus one guard page.
  explicit Stack(std::size_t usable_size);
  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;
  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;

  // Base of the usable region (above the guard page).
  void* base() const { return usable_; }
  std::size_t size() const { return usable_size_; }

 private:
  void* mapping_ = nullptr;
  void* usable_ = nullptr;
  std::size_t mapping_size_ = 0;
  std::size_t usable_size_ = 0;
};

// Single-owner freelist of equally-sized stacks. Each worker owns one pool,
// so no synchronisation is needed.
class StackPool {
 public:
  StackPool(std::size_t stack_size, std::size_t initial_population);

  // Grows on demand; never fails except by throwing on OOM.
  Stack acquire();
  void release(Stack stack);

  std::size_t stack_size() const { return stack_size_; }
  std::size_t pooled() const { return free_.size(); }

 private:
  std::size_t stack_size_;
  std::vector<Stack> free_;
};

}  // namespace gmt
