#include "uthread/context.hpp"

#include <cstddef>

#include "common/assert.hpp"

namespace gmt {

Context rearm_context(void* aligned_top, ContextEntry entry, void* arg) {
  // Synthetic frame: six callee-saved slots plus the trampoline as the
  // return target. After gmt_ctx_switch's `ret`, rsp == top (16-aligned);
  // the trampoline's `call` then establishes the entry's ABI-required
  // alignment (rsp % 16 == 8 at function entry).
  auto* frame = reinterpret_cast<std::uint64_t*>(aligned_top) - 7;
  frame[0] = 0;                                         // r15
  frame[1] = 0;                                         // r14
  frame[2] = reinterpret_cast<std::uint64_t>(arg);      // r13 -> rdi
  frame[3] = reinterpret_cast<std::uint64_t>(entry);    // r12 -> call target
  frame[4] = 0;                                         // rbx
  frame[5] = 0;                                         // rbp
  frame[6] = reinterpret_cast<std::uint64_t>(&gmt_ctx_trampoline);

  Context ctx;
  ctx.sp = frame;
  return ctx;
}

Context make_context(void* stack_base, std::size_t stack_size,
                     ContextEntry entry, void* arg) {
  GMT_CHECK(stack_base != nullptr);
  GMT_CHECK(stack_size >= 1024);
  return rearm_context(context_top(stack_base, stack_size), entry, arg);
}

}  // namespace gmt
